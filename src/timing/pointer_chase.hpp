/**
 * @file
 * The paper's measurement primitives (Section IV-D and Appendix A).
 *
 * A bare rdtscp pair around one load cannot tell an L1 hit (4-5 cycles)
 * from an L2 hit (~12 cycles): the serialization of the timestamp reads
 * puts a floor under the measured interval that swallows the difference
 * (Fig. 13).  The paper's fix is an 8-element pointer chase: seven
 * receiver-local elements guaranteed to hit in L1 followed by the target
 * line.  The eight loads are serialised by the data dependency, so the
 * single rdtscp overhead is amortised and the target's extra latency
 * survives in the total (Fig. 3).
 */

#ifndef LRULEAK_TIMING_POINTER_CHASE_HPP
#define LRULEAK_TIMING_POINTER_CHASE_HPP

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/hierarchy.hpp"
#include "sim/random.hpp"
#include "timing/uarch.hpp"

namespace lruleak::timing {

/**
 * Models the latency readout of the two measurement strategies.  The
 * *levels* at which the involved loads hit come from the cache simulator;
 * this class only turns them into the number the attacker would read.
 */
class MeasurementModel
{
  public:
    explicit MeasurementModel(const Uarch &uarch) : uarch_(uarch) {}

    /**
     * Pointer-chase measurement: @p chain_levels are the hit levels of
     * the chain elements (normally seven L1 hits), @p target_level is
     * where the timed 8th access was served.
     */
    std::uint32_t
    chase(std::span<const sim::HitLevel> chain_levels,
          sim::HitLevel target_level, sim::Xoshiro256 &rng) const
    {
        double total = uarch_.chase_overhead;
        for (auto level : chain_levels)
            total += uarch_.latency(level);
        total += uarch_.latency(target_level);
        total += rng.gaussian() * uarch_.tsc_noise_stddev;
        return quantize(total);
    }

    /** Convenience: chain of @p chain_len L1 hits plus the target. */
    std::uint32_t
    chaseAllL1(std::uint32_t chain_len, sim::HitLevel target_level,
               sim::Xoshiro256 &rng) const
    {
        const std::vector<sim::HitLevel> chain(chain_len,
                                               sim::HitLevel::L1);
        return chase(chain, target_level, rng);
    }

    /**
     * Single-access rdtscp measurement (Appendix A).  The serialization
     * floor hides latencies below it, which is exactly why L1 and L2 hits
     * come out identical.
     */
    std::uint32_t
    single(sim::HitLevel target_level, sim::Xoshiro256 &rng) const
    {
        const double body = std::max<double>(uarch_.serialize_floor,
                                             uarch_.latency(target_level));
        double total = uarch_.single_overhead + body +
                       rng.gaussian() * uarch_.single_noise_stddev;
        return quantize(total);
    }

    /**
     * Timed clflush (the Flushgeist observable).  The flush itself is
     * serialized like a single timed access; flushing a *dirty* line
     * additionally stalls until the modified data has been written back,
     * so the readout separates dirty from clean/absent lines regardless
     * of which cache level held the copy.
     */
    std::uint32_t
    flushMeasure(bool dirty, sim::Xoshiro256 &rng) const
    {
        double total = uarch_.single_overhead + uarch_.serialize_floor +
                       (dirty ? uarch_.wb_latency : 0) +
                       rng.gaussian() * uarch_.single_noise_stddev;
        return quantize(total);
    }

    /**
     * Decision threshold between "target was an L1 hit" and "target
     * missed L1" for the pointer-chase readout with a chain of
     * @p chain_len L1 hits.  Mirrors the red dotted line of Fig. 5.
     */
    std::uint32_t
    chaseThreshold(std::uint32_t chain_len = kChainLength) const
    {
        return chaseThresholdBetween(sim::HitLevel::L1, sim::HitLevel::L2,
                                     chain_len);
    }

    /**
     * Generalized decision threshold: separates "target served at
     * @p fast_level" from "target served at @p slow_level" for the
     * chase readout.  The cross-core channel decodes LLC hits against
     * memory misses through this (fast = LLC, slow = Memory).
     */
    std::uint32_t
    chaseThresholdBetween(sim::HitLevel fast_level, sim::HitLevel slow_level,
                          std::uint32_t chain_len = kChainLength) const
    {
        const double chain = uarch_.chase_overhead +
            static_cast<double>(chain_len) * uarch_.l1_latency;
        const double fast = chain + uarch_.latency(fast_level);
        const double slow = chain + uarch_.latency(slow_level);
        // Floor-quantization shifts readouts down by about half a
        // granule; recenter the threshold accordingly (matters on AMD).
        const double bias = (uarch_.tsc_granularity - 1) / 2.0;
        return static_cast<std::uint32_t>((fast + slow) / 2.0 - bias);
    }

    const Uarch &uarch() const { return uarch_; }

    /** The paper uses a 7-element local chain (footnote 3). */
    static constexpr std::uint32_t kChainLength = 7;

  private:
    std::uint32_t
    quantize(double cycles) const
    {
        if (cycles < 0)
            cycles = 0;
        const auto g = uarch_.tsc_granularity;
        const auto raw = static_cast<std::uint64_t>(cycles);
        return static_cast<std::uint32_t>(g <= 1 ? raw : (raw / g) * g);
    }

    Uarch uarch_;
};

} // namespace lruleak::timing

#endif // LRULEAK_TIMING_POINTER_CHASE_HPP
