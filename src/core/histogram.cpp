/**
 * @file
 * Histogram implementation.
 */

#include "core/histogram.hpp"

#include <algorithm>
#include <cstdio>

namespace lruleak::core {

double
Histogram::frequency(std::uint32_t value) const
{
    if (total_ == 0)
        return 0.0;
    auto it = counts_.find(value / bucket_width_ * bucket_width_);
    return it == counts_.end()
               ? 0.0
               : static_cast<double>(it->second) /
                     static_cast<double>(total_);
}

double
Histogram::mean() const
{
    if (total_ == 0)
        return 0.0;
    double sum = 0.0;
    for (const auto &[bucket, count] : counts_)
        sum += static_cast<double>(bucket) * static_cast<double>(count);
    return sum / static_cast<double>(total_);
}

std::uint32_t
Histogram::percentile(double p) const
{
    if (total_ == 0)
        return 0;
    const auto target = static_cast<std::uint64_t>(
        p * static_cast<double>(total_));
    std::uint64_t seen = 0;
    for (const auto &[bucket, count] : counts_) {
        seen += count;
        if (seen > target)
            return bucket;
    }
    return counts_.rbegin()->first;
}

std::uint32_t
Histogram::min() const
{
    return counts_.empty() ? 0 : counts_.begin()->first;
}

std::uint32_t
Histogram::max() const
{
    return counts_.empty() ? 0 : counts_.rbegin()->first;
}

std::vector<std::pair<std::uint32_t, double>>
Histogram::normalized() const
{
    std::vector<std::pair<std::uint32_t, double>> out;
    out.reserve(counts_.size());
    for (const auto &[bucket, count] : counts_)
        out.emplace_back(bucket, static_cast<double>(count) /
                                     static_cast<double>(total_));
    return out;
}

std::string
Histogram::renderPair(const Histogram &a, const Histogram &b,
                      const std::string &label_a, const std::string &label_b,
                      std::size_t bar_width)
{
    if (a.empty() && b.empty())
        return "(empty histograms)\n";

    const std::uint32_t lo = std::min(a.empty() ? ~0u : a.min(),
                                      b.empty() ? ~0u : b.min());
    const std::uint32_t hi = std::max(a.empty() ? 0u : a.max(),
                                      b.empty() ? 0u : b.max());
    const std::uint32_t step = std::max(a.bucket_width_, b.bucket_width_);

    double peak = 0.0;
    for (std::uint32_t v = lo; v <= hi; v += step)
        peak = std::max({peak, a.frequency(v), b.frequency(v)});
    if (peak <= 0.0)
        peak = 1.0;

    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line), "  cycles | %-*s | %s\n",
                  static_cast<int>(bar_width), label_a.c_str(),
                  label_b.c_str());
    out += line;
    for (std::uint32_t v = lo; v <= hi; v += step) {
        const double fa = a.frequency(v);
        const double fb = b.frequency(v);
        if (fa == 0.0 && fb == 0.0)
            continue;
        const auto na = static_cast<std::size_t>(
            fa / peak * static_cast<double>(bar_width));
        const auto nb = static_cast<std::size_t>(
            fb / peak * static_cast<double>(bar_width));
        std::string bar_a(na, '#');
        bar_a.resize(bar_width, ' ');
        std::snprintf(line, sizeof(line), "  %6u | %s | %s  (%4.1f%% / %4.1f%%)\n",
                      v, bar_a.c_str(), std::string(nb, '#').c_str(),
                      fa * 100.0, fb * 100.0);
        out += line;
    }
    return out;
}

double
overlapCoefficient(const Histogram &a, const Histogram &b)
{
    if (a.empty() || b.empty())
        return 0.0;
    // Walk the union of occupied buckets (the two histograms are
    // expected to share a bucket width).
    std::map<std::uint32_t, double> fa, fb;
    for (const auto &[bucket, freq] : a.normalized())
        fa[bucket] = freq;
    for (const auto &[bucket, freq] : b.normalized())
        fb[bucket] = freq;
    double overlap = 0.0;
    for (const auto &[bucket, freq] : fa) {
        auto it = fb.find(bucket);
        if (it != fb.end())
            overlap += std::min(freq, it->second);
    }
    return overlap;
}

} // namespace lruleak::core
