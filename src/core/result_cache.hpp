/**
 * @file
 * Content-addressed experiment-result cache.
 *
 * A run's output is a pure function of four things: the experiment
 * name, its fully resolved parameters (defaults + overrides, which the
 * declared seed is part of), the output format, and the binary that
 * produced it.  ResultCache keys an on-disk store on the SHA-256 of
 * exactly that tuple, so
 *
 *   - a warm CI re-run of `run-all --smoke` executes nothing,
 *   - a parameter sweep that revisits a cell gets it for free,
 *   - and any change to the binary, a parameter, the seed or the
 *     format misses by construction — there is no invalidation logic
 *     to get wrong.
 *
 * A hit returns the stored artifact byte-identically (the artifact IS
 * the bytes the run would have written), which is what keeps cached
 * and fresh `run-all` documents merge-compatible.  The store is one
 * flat directory of <key>.artifact files under the configured cache
 * dir (`--cache-dir`, or the LRULEAK_CACHE environment variable); the
 * default is no caching at all.
 */

#ifndef LRULEAK_CORE_RESULT_CACHE_HPP
#define LRULEAK_CORE_RESULT_CACHE_HPP

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace lruleak::core {

/** What the cache did across one CLI invocation (the run summary). */
struct CacheCounters
{
    std::uint64_t hits = 0;   //!< artifacts served from the store
    std::uint64_t misses = 0; //!< executed and stored
    std::uint64_t skips = 0;  //!< executed without cache consultation
};

class ResultCache
{
  public:
    /**
     * @param dir store directory (created lazily on first store)
     * @param binary_hash content hash of the producing binary; every
     *        key mixes it in, so a rebuilt binary never hits stale
     *        artifacts.  Tests inject synthetic hashes; the CLI passes
     *        util::selfBinaryHashHex().
     */
    ResultCache(std::string dir, std::string binary_hash);

    /**
     * Cache key of one run: SHA-256 over (binary hash, experiment
     * name, canonicalized parameters, format token).  @p params must
     * be the *resolved* parameter map (ParamMap::values()): defaults
     * filled in and overrides applied, so two spellings of the same
     * run share a key.
     */
    std::string keyFor(std::string_view experiment,
                       const std::map<std::string, std::string> &params,
                       std::string_view format) const;

    /** The stored artifact, or nullopt on a miss / unreadable entry. */
    std::optional<std::string> fetch(const std::string &key) const;

    /**
     * Store an artifact under @p key (atomic rename, so a concurrent
     * reader sees either nothing or the full bytes).  Returns false
     * when the store cannot be written; callers treat that as "cache
     * off", never as a run failure.
     */
    bool store(const std::string &key, const std::string &artifact) const;

    const std::string &dir() const { return dir_; }

  private:
    std::string entryPath(const std::string &key) const;

    std::string dir_;
    std::string binary_hash_;
};

/**
 * Resolve the cache directory for a CLI invocation: an explicit
 * `--cache-dir` wins, else the LRULEAK_CACHE environment variable,
 * else empty (caching off).
 */
std::string resolveCacheDir(const std::string &flag_value);

} // namespace lruleak::core

#endif // LRULEAK_CORE_RESULT_CACHE_HPP
