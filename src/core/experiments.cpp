/**
 * @file
 * Experiment runner implementations.
 */

#include "core/experiments.hpp"

#include <algorithm>

#include "channel/flush_reload.hpp"
#include "core/trial_runner.hpp"
#include "exec/engine.hpp"
#include "sim/access_port.hpp"
#include "sim/cache_set.hpp"
#include "timing/pointer_chase.hpp"

namespace lruleak::core {

// ------------------------------------------------------------- Table I

namespace {

constexpr std::uint64_t kLineX = 100; //!< the paper's "line x"

/**
 * Materialise one pass of the paper's Sequence 2 into @p tags:
 * 0 (x) 1 (x) ... 7, inserting line x with the configured probability.
 * The paper "assume[s] line x will be accessed at least once", so the
 * last insertion point fires unconditionally if no earlier one did.
 */
void
appendSeq2(std::vector<sim::Addr> &tags, sim::Xoshiro256 &rng,
           const EvictionStudyConfig &config)
{
    bool x_accessed = false;
    for (std::uint32_t line = 0; line < config.ways; ++line) {
        tags.push_back(line);
        if (line + 1 < config.ways) {
            const bool last_gap = line + 2 == config.ways;
            if (rng.chance(config.x_probability) ||
                (last_gap && !x_accessed)) {
                tags.push_back(kLineX);
                x_accessed = true;
            }
        }
    }
}

} // namespace

std::vector<double>
evictionProbabilities(sim::ReplPolicyKind policy, InitCondition init,
                      AccessSequence seq, const EvictionStudyConfig &config)
{
    // One trial = one value-semantic CacheSet; every access sequence is
    // materialised and replayed through the batch API.  Trials fan out
    // over core::runTrials with per-trial RNG streams, so the result is
    // identical for any worker count.
    const auto trial_fn = [&](std::uint32_t trial, sim::Xoshiro256 &rng) {
        sim::CacheSet set(
            config.ways,
            sim::ReplState::make(policy, config.ways,
                                 config.seed + trial));
        std::vector<sim::Addr> tags;
        tags.reserve(4 * config.ways);

        // ----- Warm-up: establish the initial condition.
        if (init == InitCondition::Random) {
            // Lines 0..7 and a few others in random order.
            for (std::uint32_t i = 0; i < 4 * config.ways; ++i) {
                const std::uint64_t t = rng.below(config.ways + 3);
                tags.push_back(t < config.ways ? t : kLineX + t);
            }
        } else {
            // "Previous access to the set is accessed in order with
            // random insertion like Sequence 2": two passes leave the
            // set in Sequence 2's steady regime.
            appendSeq2(tags, rng, config);
            appendSeq2(tags, rng, config);
        }
        set.replayBatch(tags);

        // ----- Measured loop.
        std::vector<std::uint8_t> evicted(config.loop_iterations, 0);
        for (std::uint32_t iter = 0; iter < config.loop_iterations;
             ++iter) {
            tags.clear();
            if (seq == AccessSequence::Seq1) {
                for (std::uint32_t line = 0; line <= config.ways; ++line)
                    tags.push_back(line); // 0..7 then line 8
            } else {
                appendSeq2(tags, rng, config);
            }
            set.replayBatch(tags);
            evicted[iter] = set.probe(0).has_value() ? 0 : 1;
        }
        return evicted;
    };

    std::vector<std::uint64_t> evictions(config.loop_iterations, 0);
    evictions = runTrialsReduce(
        config.trials, config.seed, trial_fn, std::move(evictions),
        [&](std::vector<std::uint64_t> acc,
            std::vector<std::uint8_t> evicted) {
            for (std::uint32_t i = 0; i < config.loop_iterations; ++i)
                acc[i] += evicted[i];
            return acc;
        });

    std::vector<double> probs(config.loop_iterations);
    for (std::uint32_t i = 0; i < config.loop_iterations; ++i)
        probs[i] = static_cast<double>(evictions[i]) /
                   static_cast<double>(config.trials);
    return probs;
}

// ----------------------------------------------------- Figures 3 and 13

LatencyHistograms
pointerChaseHistograms(const timing::Uarch &uarch, std::uint32_t samples,
                       std::uint64_t seed)
{
    const timing::MeasurementModel model(uarch);
    sim::Xoshiro256 rng(seed);
    LatencyHistograms out{Histogram(1), Histogram(1)};
    for (std::uint32_t i = 0; i < samples; ++i) {
        out.hit.add(model.chaseAllL1(7, sim::HitLevel::L1, rng));
        out.miss.add(model.chaseAllL1(7, sim::HitLevel::L2, rng));
    }
    return out;
}

LatencyHistograms
singleAccessHistograms(const timing::Uarch &uarch, std::uint32_t samples,
                       std::uint64_t seed)
{
    const timing::MeasurementModel model(uarch);
    sim::Xoshiro256 rng(seed);
    LatencyHistograms out{Histogram(1), Histogram(1)};
    for (std::uint32_t i = 0; i < samples; ++i) {
        out.hit.add(model.single(sim::HitLevel::L1, rng));
        out.miss.add(model.single(sim::HitLevel::L2, rng));
    }
    return out;
}

// ------------------------------------------------------ Tables V and VI

std::string
channelKindName(ChannelKind kind)
{
    return channel::channelDisplayName(kind);
}

namespace {

/**
 * Shared harness: run `kind` through the unified channel-session
 * pipeline for a while, for its sender-side counters.  The hyper-
 * threaded co-residency of Table VI, at the scale the table used from
 * its first revision (64-bit message x4, 2000 receiver samples).
 */
channel::SessionResult
runChannelKind(const timing::Uarch &uarch, ChannelKind kind,
               std::uint64_t seed)
{
    channel::SessionConfig s;
    s.channel = kind;
    s.mode = channel::SharingMode::HyperThreaded;
    s.uarch = uarch;
    s.message = channel::randomBits(64, seed);
    s.repeats = 4;
    s.ts = 6000;
    s.tr = 600;
    s.max_samples = 2000;
    s.seed = seed;
    return channel::runSession(s);
}

} // namespace

double
meanEncodeLatency(const timing::Uarch &uarch, ChannelKind kind,
                  std::uint64_t seed)
{
    // Micro-protocol matching the paper's Table V methodology: put the
    // sender's line into the state the channel leaves it in (flushed to
    // memory, evicted to L2, or resident in L1), then time one encode.
    sim::HierarchyConfig h;
    h.l1_way_predictor = uarch.way_predictor;
    sim::CacheHierarchy hierarchy(h);

    const auto alg = channel::senderAlgorithmFor(kind);
    channel::ChannelLayout layout(sim::CacheConfig::intelL1d(), 7, 63);
    const sim::MemRef line = layout.senderLine(alg);

    constexpr std::uint32_t kTrials = 256;
    (void)seed;
    double sum = 0.0;
    hierarchy.access(line); // establish residency
    for (std::uint32_t t = 0; t < kTrials; ++t) {
        switch (kind) {
          case ChannelKind::FrMem:
            hierarchy.flush(line);
            break;
          case ChannelKind::FlushDirty:
            // The receiver's timed clflush removes the line each sample.
            hierarchy.flush(line);
            break;
          case ChannelKind::FrL1:
          case ChannelKind::DirtyEvict:
            // The receiver evicts the line from L1 via 8 same-set lines
            // (for dirty-evict that is its refill walk).
            for (std::uint32_t i = 1; i <= layout.ways(); ++i)
                hierarchy.access(
                    layout.receiverLine(channel::LruAlgorithm::Alg1Shared,
                                        i));
            break;
          case ChannelKind::LruAlg1:
          case ChannelKind::LruAlg2:
          case ChannelKind::PrimeProbe:
          case ChannelKind::XCoreLruAlg2:
            // LRU-state and Prime+Probe senders leave the line wherever
            // it is — typically L1.
            break;
        }
        const auto res = hierarchy.access(line);
        sum += uarch.latency(res.level);
    }
    // Encoding = victim-address arithmetic + loop overhead + the access.
    return uarch.encode_addr_calc + 10.0 +
           sum / static_cast<double>(kTrials);
}

std::vector<MissRateRow>
senderMissRates(const timing::Uarch &uarch, std::uint64_t seed)
{
    return senderMissRates(uarch,
                           {ChannelKind::FrMem, ChannelKind::FrL1,
                            ChannelKind::LruAlg1, ChannelKind::LruAlg2},
                           seed);
}

std::vector<MissRateRow>
senderMissRates(const timing::Uarch &uarch,
                const std::vector<ChannelKind> &channels,
                std::uint64_t seed)
{
    std::vector<MissRateRow> rows;

    for (ChannelKind kind : channels) {
        const auto run = runChannelKind(uarch, kind, seed);
        rows.push_back(MissRateRow{channelKindName(kind), run.sender_l1,
                                   run.sender_l2, run.sender_llc});
    }

    // ----- sender & gcc: the sender shares the core with a benign
    // gcc-like workload instead of a receiver.
    {
        sim::HierarchyConfig h;
        h.l1_way_predictor = uarch.way_predictor;
        sim::CacheHierarchy hierarchy(h);
        channel::ChannelLayout layout(sim::CacheConfig::intelL1d(), 7, 63);

        channel::SenderConfig sc;
        sc.alg = channel::LruAlgorithm::Alg1Shared;
        sc.message = channel::randomBits(64, seed);
        sc.repeats = 4;
        sc.ts = 6000;
        channel::LruSender sender(layout, sc);

        workload::WorkloadProgram gcc(workload::makeWorkload("gccmix"),
                                      seed + 1, 1);
        sim::SingleCorePort port(hierarchy);
        exec::RoundRobinSmt policy;
        exec::EngineConfig ec;
        ec.seed = seed;
        exec::Engine engine(port, uarch, policy, ec);
        engine.run(sender, gcc, /*primary=*/0);

        rows.push_back(MissRateRow{
            "sender & gcc",
            hierarchy.l1().counters().forThread(channel::kSenderThread),
            hierarchy.l2().counters().forThread(channel::kSenderThread),
            hierarchy.llc().counters().forThread(channel::kSenderThread)});
    }

    // ----- sender only.
    {
        sim::HierarchyConfig h;
        h.l1_way_predictor = uarch.way_predictor;
        sim::CacheHierarchy hierarchy(h);
        channel::ChannelLayout layout(sim::CacheConfig::intelL1d(), 7, 63);

        channel::SenderConfig sc;
        sc.alg = channel::LruAlgorithm::Alg1Shared;
        sc.message = channel::randomBits(64, seed);
        sc.repeats = 4;
        sc.ts = 6000;
        channel::LruSender sender(layout, sc);

        workload::IdleProgram idle;
        sim::SingleCorePort port(hierarchy);
        exec::RoundRobinSmt policy;
        exec::EngineConfig ec;
        ec.seed = seed;
        exec::Engine engine(port, uarch, policy, ec);
        engine.run(sender, idle, /*primary=*/0);

        rows.push_back(MissRateRow{
            "sender only",
            hierarchy.l1().counters().forThread(channel::kSenderThread),
            hierarchy.l2().counters().forThread(channel::kSenderThread),
            hierarchy.llc().counters().forThread(channel::kSenderThread)});
    }

    return rows;
}

// -------------------------------------------------------------- Fig. 9

std::vector<workload::CpuRunResult>
replacementPerformance(const std::vector<sim::ReplPolicyKind> &policies,
                       std::uint64_t instructions, std::uint64_t seed)
{
    // One trial per (workload, policy) cell, fanned out over
    // core::runTrials.  Each trial builds its own generator so nothing
    // is shared across workers; the flattened trial order reproduces
    // the original row order (grouped by workload, one row per policy).
    const std::uint32_t npolicies =
        static_cast<std::uint32_t>(policies.size());
    if (npolicies == 0)
        return {};
    const std::vector<std::string> names = workload::workloadNames();
    const std::uint32_t nworkloads =
        static_cast<std::uint32_t>(names.size());

    return runTrials(
        nworkloads * npolicies, seed,
        [&](std::uint32_t trial, sim::Xoshiro256 &) {
            const auto gen =
                workload::makeWorkload(names[trial / npolicies]);
            workload::CpuModelConfig cfg;
            cfg.instructions = instructions;
            cfg.warmup_instructions = instructions / 10;
            cfg.seed = seed;
            return workload::runCpuModel(*gen,
                                         policies[trial % npolicies],
                                         cfg);
        });
}

// ------------------------------------------------------------- Fig. 11

PlAttackTrace
plCacheAttack(sim::PlMode mode, const timing::Uarch &uarch,
              std::size_t bits, std::uint64_t seed)
{
    channel::SessionConfig cfg;
    cfg.channel = channel::ChannelId::LruAlg2;
    cfg.uarch = uarch;
    cfg.mode = channel::SharingMode::HyperThreaded;
    cfg.pl_mode = mode;
    cfg.sender_locks_line = true;
    cfg.d = 4;
    cfg.tr = 600;
    cfg.ts = 6000;
    cfg.message = channel::alternatingBits(bits);
    cfg.seed = seed;

    const auto res = channel::runSession(cfg);

    PlAttackTrace out;
    out.samples = res.samples;
    out.sent = res.sent;
    out.threshold = res.threshold;
    out.error_rate = res.error_rate;

    // "Constant" = every post-warm-up observation classifies the same.
    const channel::Bits obs = channel::thresholdSamples(
        out.samples, out.threshold, /*invert=*/true);
    out.constant = true;
    for (std::size_t i = 5; i < obs.size(); ++i) {
        if (obs[i] != obs[5]) {
            out.constant = false;
            break;
        }
    }
    return out;
}

} // namespace lruleak::core
