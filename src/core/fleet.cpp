/**
 * @file
 * Shard partitioning, the shared run-all renderer, and the shard-JSON
 * merge.
 */

#include "core/fleet.hpp"

#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/experiment.hpp"
#include "util/hash.hpp"

namespace lruleak::core {

ShardSpec
parseShardSpec(const std::string &text)
{
    const auto slash = text.find('/');
    std::size_t used_i = 0, used_n = 0;
    unsigned long index = 0, count = 0;
    try {
        if (slash == std::string::npos || slash == 0 ||
            slash + 1 >= text.size())
            throw std::invalid_argument("shape");
        index = std::stoul(text.substr(0, slash), &used_i);
        count = std::stoul(text.substr(slash + 1), &used_n);
    } catch (const std::exception &) {
        throw std::invalid_argument(
            "--shard wants i/N with 0 <= i < N (e.g. --shard=0/3), got '" +
            text + "'");
    }
    if (used_i != slash || used_n != text.size() - slash - 1 ||
        count == 0 || index >= count) {
        throw std::invalid_argument(
            "--shard wants i/N with 0 <= i < N (e.g. --shard=0/3), got '" +
            text + "'");
    }
    return ShardSpec{static_cast<std::uint32_t>(index),
                     static_cast<std::uint32_t>(count)};
}

std::uint32_t
shardOf(std::string_view name, std::uint32_t count)
{
    if (count == 0)
        throw std::invalid_argument("shard count must be positive");
    return static_cast<std::uint32_t>(util::fnv1a64(name) % count);
}

bool
inShard(std::string_view name, const ShardSpec &shard)
{
    return shardOf(name, shard.count) == shard.index;
}

namespace {

/** Does the experiment declare a parameter with this name? */
bool
declaresParam(const Experiment &experiment, const std::string &name)
{
    for (const auto &spec : experiment.params()) {
        if (spec.name == name)
            return true;
    }
    return false;
}

/** Render one experiment into a buffer (see the CLI's rationale:
 *  buffering keeps machine-readable formats well-formed on a throw). */
std::string
renderOne(const Experiment &experiment,
          const std::map<std::string, std::string> &overrides,
          OutputFormat format)
{
    std::ostringstream os;
    const auto sink = makeSink(format, os);
    runExperiment(experiment, overrides, *sink);
    return os.str();
}

std::string_view
formatToken(OutputFormat format)
{
    switch (format) {
      case OutputFormat::Table: return "table";
      case OutputFormat::Json:  return "json";
      case OutputFormat::Csv:   return "csv";
    }
    return "unknown";
}

} // namespace

RunAllOutcome
runAllCatalog(const RunAllOptions &options, std::ostream &out,
              std::ostream &err)
{
    RunAllOutcome outcome;
    bool first = true;
    if (options.format == OutputFormat::Json)
        out << "[\n";
    for (const Experiment *e : Registry::instance().all()) {
        if (options.shard && !inShard(e->name(), *options.shard)) {
            ++outcome.skipped;
            continue;
        }
        std::string rendered;
        try {
            auto merged = options.smoke
                              ? e->smokeParams()
                              : std::map<std::string, std::string>{};
            if (!options.seed.empty() && declaresParam(*e, "seed"))
                merged["seed"] = options.seed;
            if (options.cache) {
                // Key on the RESOLVED parameters (defaults + merged
                // overrides): every spelling of the same run shares one
                // key, and a changed default is a changed key.
                const ParamMap resolved =
                    resolveParams(e->params(), merged);
                const std::string key = options.cache->keyFor(
                    e->name(), resolved.values(),
                    formatToken(options.format));
                if (auto artifact = options.cache->fetch(key)) {
                    rendered = std::move(*artifact);
                    ++outcome.cache.hits;
                } else {
                    rendered = renderOne(*e, merged, options.format);
                    options.cache->store(key, rendered);
                    ++outcome.cache.misses;
                }
            } else {
                rendered = renderOne(*e, merged, options.format);
                ++outcome.cache.skips;
            }
        } catch (const std::exception &ex) {
            err << e->name() << " FAILED: " << ex.what() << "\n";
            ++outcome.failures;
            continue;
        }
        switch (options.format) {
          case OutputFormat::Table:
            out << "\n##### " << e->name() << " #####\n\n" << rendered;
            break;
          case OutputFormat::Json:
            out << (first ? "" : ",\n") << rendered;
            break;
          case OutputFormat::Csv:
            out << (first ? "" : "\n") << rendered;
            break;
        }
        first = false;
        ++outcome.ran;
    }
    if (options.format == OutputFormat::Json)
        out << "]\n";
    return outcome;
}

std::string
runAllSummary(const RunAllOptions &options, const RunAllOutcome &outcome)
{
    std::ostringstream os;
    os << "run-all: ran " << outcome.ran << ", skipped "
       << outcome.skipped;
    if (options.shard)
        os << " (shard " << options.shard->index << "/"
           << options.shard->count << ")";
    if (outcome.failures > 0)
        os << ", " << outcome.failures << " FAILED";
    os << "; cache: " << outcome.cache.hits << " hit, "
       << outcome.cache.misses << " miss, " << outcome.cache.skips
       << " skip";
    return os.str();
}

namespace {

/** One top-level object of a run-all JSON array: its experiment name
 *  and its exact bytes ('{' through the matching '}'). */
struct ShardEntry
{
    std::string name;
    std::string text;
};

[[noreturn]] void
badDocument(const std::string &why)
{
    throw std::invalid_argument("not a run-all JSON document: " + why);
}

/** Extract the "experiment" field of one object's raw text. */
std::string
experimentNameOf(const std::string &object)
{
    static constexpr std::string_view kField = "\"experiment\": \"";
    const auto at = object.find(kField);
    if (at == std::string::npos)
        badDocument("object without an \"experiment\" field");
    std::string name;
    for (std::size_t i = at + kField.size(); i < object.size(); ++i) {
        const char c = object[i];
        if (c == '\\') {
            badDocument("experiment name with escapes is not a "
                        "registry name");
        }
        if (c == '"')
            return name;
        name += c;
    }
    badDocument("unterminated experiment name");
}

/**
 * Split one run-all JSON document into its top-level objects, raw
 * bytes preserved.  A strict scanner for the renderer's own output
 * shape: '[' objects ']' with anything-goes whitespace/commas between
 * objects, string/escape/nesting tracked so braces inside values
 * cannot confuse it.
 */
std::vector<ShardEntry>
splitRunAllJson(const std::string &doc)
{
    std::size_t i = 0;
    const auto skipSeparators = [&](bool commas) {
        while (i < doc.size() &&
               (doc[i] == ' ' || doc[i] == '\n' || doc[i] == '\r' ||
                doc[i] == '\t' || (commas && doc[i] == ',')))
            ++i;
    };
    skipSeparators(false);
    if (i >= doc.size() || doc[i] != '[')
        badDocument("expected a top-level array");
    ++i;

    std::vector<ShardEntry> entries;
    for (;;) {
        skipSeparators(true);
        if (i >= doc.size())
            badDocument("unterminated array");
        if (doc[i] == ']') {
            ++i;
            break;
        }
        if (doc[i] != '{')
            badDocument("array element is not an object");
        const std::size_t start = i;
        int depth = 0;
        bool in_string = false;
        bool escaped = false;
        for (; i < doc.size(); ++i) {
            const char c = doc[i];
            if (in_string) {
                if (escaped)
                    escaped = false;
                else if (c == '\\')
                    escaped = true;
                else if (c == '"')
                    in_string = false;
                continue;
            }
            if (c == '"') {
                in_string = true;
            } else if (c == '{') {
                ++depth;
            } else if (c == '}') {
                if (--depth == 0) {
                    ++i;
                    break;
                }
            }
        }
        if (depth != 0)
            badDocument("unterminated object");
        ShardEntry entry;
        entry.text = doc.substr(start, i - start);
        entry.name = experimentNameOf(entry.text);
        entries.push_back(std::move(entry));
    }
    skipSeparators(false);
    if (i != doc.size())
        badDocument("trailing bytes after the array");
    return entries;
}

} // namespace

std::string
mergeRunAllJson(const std::vector<std::string> &documents)
{
    // Registry order is name order (Registry::all walks a name-keyed
    // map), so sorting the union by name reproduces the unsharded
    // rendering order without consulting the registry — merge works on
    // documents from binaries with catalogs this one has never seen.
    std::map<std::string, std::string> by_name;
    for (const std::string &doc : documents) {
        for (ShardEntry &entry : splitRunAllJson(doc)) {
            const auto [it, inserted] =
                by_name.emplace(std::move(entry.name),
                                std::move(entry.text));
            if (!inserted)
                throw std::invalid_argument(
                    "experiment '" + it->first +
                    "' appears in more than one shard document");
        }
    }

    std::string out = "[\n";
    bool first = true;
    for (const auto &[name, text] : by_name) {
        if (!first)
            out += ",\n";
        out += text;
        out += "\n";
        first = false;
    }
    out += "]\n";
    return out;
}

} // namespace lruleak::core
