/**
 * @file
 * Plain-text table and series rendering for the bench binaries, so every
 * reproduced table/figure prints in a shape directly comparable to the
 * paper.
 */

#ifndef LRULEAK_CORE_TABLE_HPP
#define LRULEAK_CORE_TABLE_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace lruleak::core {

/** Column-aligned ASCII table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header)
        : header_(std::move(header))
    {}

    /** Append a row; short rows are padded with empty cells. */
    void addRow(std::vector<std::string> row);

    /** Render with a separator under the header. */
    void print(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

    /** Structured access for the machine-readable ResultSink emitters. */
    const std::vector<std::string> &headerCells() const { return header_; }
    const std::vector<std::vector<std::string>> &rowCells() const
    {
        return rows_;
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format helpers used throughout the benches. */
std::string fmtDouble(double v, int precision = 2);
std::string fmtPercent(double fraction, int precision = 1);
std::string fmtKbps(double kbps);

/**
 * One-line unicode sparkline of a series (e.g. a latency trace), plus a
 * multi-row ASCII chart for figure-style output.
 */
std::string sparkline(const std::vector<double> &values);
std::string asciiChart(const std::vector<double> &values,
                       std::size_t height = 8, std::size_t max_width = 100);

} // namespace lruleak::core

#endif // LRULEAK_CORE_TABLE_HPP
