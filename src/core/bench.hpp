/**
 * @file
 * The `lruleak bench` harness: accesses/sec of the simulator hot path.
 *
 * Four lanes replay the same tag trace through one cache set per
 * policy:
 *
 *   legacy  - a faithful copy of the seed CacheSet: per-access calls
 *             into a heap-allocated virtual ReplacementPolicy;
 *   value   - CacheSet::access on the inline ReplState (per-access
 *             std::visit dispatch);
 *   batch   - CacheSet::accessBatch (dispatch hoisted out of the loop,
 *             inner loop specialised per concrete state, one
 *             SetAccessResult written per access);
 *   replay  - CacheSet::replayBatch (same loop, aggregate stats only —
 *             what Monte-Carlo experiments replaying a sequence for its
 *             state effect use).
 *
 * Two workloads: "seq1_walk", the paper's Sequence 1 (lines 0..N walked
 * in order — the access pattern of the channel protocols and Table I),
 * and "hot_mix", a random hot/cold tag mix.  Results feed
 * BENCH_sim.json, the repo's perf trajectory seed; the headline number
 * is replay-over-legacy on TreePLRU under seq1_walk (the Intel L1D
 * policy and access pattern every channel experiment exercises).
 */

#ifndef LRULEAK_CORE_BENCH_HPP
#define LRULEAK_CORE_BENCH_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/repl_state.hpp"

namespace lruleak::core {

/** Knobs of one bench run. */
struct SimBenchConfig
{
    std::uint64_t accesses = 8'000'000; //!< per lane, per policy
    std::uint32_t ways = 8;             //!< set associativity
    std::uint32_t hot_tags = 8;         //!< working set that mostly hits
    std::uint32_t cold_tags = 24;       //!< conflict tags that miss
    double hot_fraction = 0.75;         //!< P(access draws a hot tag)
    std::uint32_t batch = 4096;         //!< accessBatch chunk size
    std::uint64_t seed = 1;
    std::vector<sim::ReplPolicyKind> policies; //!< empty = all six
};

/** The trace shapes the bench drives. */
enum class BenchWorkload
{
    Seq1Walk, //!< paper Sequence 1: lines 0..ways walked in order
    HotMix,   //!< random hot-working-set / cold-conflict mix
};

std::string_view benchWorkloadName(BenchWorkload w);

/** Throughput of the four lanes for one (workload, policy) cell. */
struct SimBenchRow
{
    BenchWorkload workload = BenchWorkload::Seq1Walk;
    sim::ReplPolicyKind policy = sim::ReplPolicyKind::TreePlru;
    double legacy_aps = 0.0; //!< accesses/sec, virtual per-access path
    double value_aps = 0.0;  //!< accesses/sec, ReplState per-access path
    double batch_aps = 0.0;  //!< accesses/sec, accessBatch (results)
    double replay_aps = 0.0; //!< accesses/sec, replayBatch (stats only)

    double
    batchOverLegacy() const
    {
        return legacy_aps > 0.0 ? batch_aps / legacy_aps : 0.0;
    }

    double
    replayOverLegacy() const
    {
        return legacy_aps > 0.0 ? replay_aps / legacy_aps : 0.0;
    }
};

/** Run the bench for every configured policy. */
std::vector<SimBenchRow> runSimBench(const SimBenchConfig &config);

/**
 * One macro lane: a whole-subsystem hot path timed end to end.  These
 * absorb the orphan google-benchmark binary (bench/microbench_simulator)
 * into the `lruleak bench` flow: raw cache hits and miss streams, full
 * hierarchy walks, covert-channel bits through the execution engine
 * (single-core SMT and cross-core LLC), and Spectre victim calls.
 */
struct MacroBenchRow
{
    std::string name;          //!< lane identifier
    std::uint64_t items = 0;   //!< operations executed
    double items_per_sec = 0.0;
};

/** Run the macro lanes (scaled from config.accesses). */
std::vector<MacroBenchRow> runMacroBench(const SimBenchConfig &config);

/**
 * Floor thresholds for `lruleak bench --check` (the CI perf gate).
 *
 * The macro floors are set well under the post-fast-path numbers on a
 * single shared-runner core (covert ~75e3, xcore ~34e3 bits/s) but
 * above the pre-fast-path baselines (~18e3 / ~8e3), so the gate trips
 * on a genuine regression of the Session hot path rather than on
 * machine noise.  The replay floor guards every (workload, policy)
 * cell — in particular hot_mix, where replayBatch once slipped below
 * the legacy per-access path.
 */
struct BenchCheckConfig
{
    double covert_bit_floor = 30'000.0; //!< covert_channel_bit items/s
    double xcore_bit_floor = 15'000.0;  //!< xcore_channel_bit items/s
    double trace_replay_floor = 500'000.0; //!< trace_replay_access items/s
    double replay_ratio_floor = 1.0;    //!< replay_over_legacy, all cells
};

/**
 * Apply the floors to a finished run; prints one line per violation to
 * @p os.  Returns true when every floor holds.
 */
bool checkSimBench(const BenchCheckConfig &check,
                   const std::vector<SimBenchRow> &rows,
                   const std::vector<MacroBenchRow> &macro,
                   std::ostream &os);

/** Emit the BENCH_sim.json document. */
void writeSimBenchJson(const SimBenchConfig &config,
                       const std::vector<SimBenchRow> &rows,
                       const std::vector<MacroBenchRow> &macro,
                       std::ostream &os);

} // namespace lruleak::core

#endif // LRULEAK_CORE_BENCH_HPP
