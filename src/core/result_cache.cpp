/**
 * @file
 * On-disk content-addressed result store.
 */

#include "core/result_cache.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "util/hash.hpp"

namespace lruleak::core {

namespace fs = std::filesystem;

ResultCache::ResultCache(std::string dir, std::string binary_hash)
    : dir_(std::move(dir)), binary_hash_(std::move(binary_hash))
{}

std::string
ResultCache::keyFor(std::string_view experiment,
                    const std::map<std::string, std::string> &params,
                    std::string_view format) const
{
    // Length-prefix every field so no two tuples can serialize to the
    // same byte string (a params *value* containing "format=" must not
    // alias the format field).
    util::Sha256 h;
    const auto field = [&h](std::string_view text) {
        const std::string len = std::to_string(text.size()) + ":";
        h.update(len);
        h.update(text);
    };
    field("lruleak-result-v1");
    field(binary_hash_);
    field(experiment);
    field(std::to_string(params.size()));
    for (const auto &[name, value] : params) {
        field(name);
        field(value);
    }
    field(format);
    return h.hex();
}

std::string
ResultCache::entryPath(const std::string &key) const
{
    return (fs::path(dir_) / (key + ".artifact")).string();
}

std::optional<std::string>
ResultCache::fetch(const std::string &key) const
{
    std::ifstream in(entryPath(key), std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream os;
    os << in.rdbuf();
    if (!in.good() && !in.eof())
        return std::nullopt;
    return os.str();
}

bool
ResultCache::store(const std::string &key, const std::string &artifact) const
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        return false;
    // Write-then-rename: the entry appears atomically under its final
    // name, so parallel shard workers sharing one cache dir can race
    // on the same key harmlessly.
    const std::string final_path = entryPath(key);
    const std::string tmp_path =
        final_path + ".tmp." +
        std::to_string(static_cast<unsigned long long>(
            std::hash<std::string>{}(artifact) & 0xffffff));
    {
        std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out << artifact;
        if (!out.good())
            return false;
    }
    fs::rename(tmp_path, final_path, ec);
    if (ec) {
        fs::remove(tmp_path, ec);
        return false;
    }
    return true;
}

std::string
resolveCacheDir(const std::string &flag_value)
{
    if (!flag_value.empty())
        return flag_value;
    if (const char *env = std::getenv("LRULEAK_CACHE"))
        return env;
    return {};
}

} // namespace lruleak::core
