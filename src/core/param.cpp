/**
 * @file
 * Parameter declaration, parsing and validation.
 */

#include "core/param.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace lruleak::core {

namespace {

std::string
lowered(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

std::string
fmtReal(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

} // namespace

std::string_view
paramTypeName(ParamType type)
{
    switch (type) {
      case ParamType::Int:    return "int";
      case ParamType::Real:   return "real";
      case ParamType::Flag:   return "flag";
      case ParamType::Str:    return "str";
      case ParamType::Choice: return "choice";
    }
    return "unknown";
}

ParamSpec
ParamSpec::integer(std::string name, std::int64_t def,
                   std::string description)
{
    return ParamSpec{std::move(name), ParamType::Int, std::to_string(def),
                     std::move(description), {}};
}

ParamSpec
ParamSpec::real(std::string name, double def, std::string description)
{
    return ParamSpec{std::move(name), ParamType::Real, fmtReal(def),
                     std::move(description), {}};
}

ParamSpec
ParamSpec::flag(std::string name, bool def, std::string description)
{
    return ParamSpec{std::move(name), ParamType::Flag,
                     def ? "true" : "false", std::move(description), {}};
}

ParamSpec
ParamSpec::str(std::string name, std::string def, std::string description)
{
    return ParamSpec{std::move(name), ParamType::Str, std::move(def),
                     std::move(description), {}};
}

ParamSpec
ParamSpec::choice(std::string name, std::string def,
                  std::string description, std::vector<std::string> choices)
{
    return ParamSpec{std::move(name), ParamType::Choice, std::move(def),
                     std::move(description), std::move(choices)};
}

std::int64_t
parseInt(const std::string &name, const std::string &text)
{
    try {
        std::size_t pos = 0;
        const std::int64_t v = std::stoll(text, &pos, 0);
        if (pos != text.size())
            throw std::invalid_argument("trailing characters");
        return v;
    } catch (const std::exception &) {
        throw ParamError("parameter '" + name + "': '" + text +
                         "' is not an integer");
    }
}

double
parseReal(const std::string &name, const std::string &text)
{
    try {
        std::size_t pos = 0;
        const double v = std::stod(text, &pos);
        if (pos != text.size())
            throw std::invalid_argument("trailing characters");
        return v;
    } catch (const std::exception &) {
        throw ParamError("parameter '" + name + "': '" + text +
                         "' is not a number");
    }
}

bool
parseFlag(const std::string &name, const std::string &text)
{
    const std::string t = lowered(text);
    if (t == "1" || t == "true" || t == "yes" || t == "on")
        return true;
    if (t == "0" || t == "false" || t == "no" || t == "off")
        return false;
    throw ParamError("parameter '" + name + "': '" + text +
                     "' is not a flag (true/false/1/0/yes/no/on/off)");
}

bool
ParamMap::has(const std::string &name) const
{
    return values_.count(name) != 0;
}

const std::string &
ParamMap::raw(const std::string &name) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        throw ParamError("parameter '" + name + "' was not declared");
    return it->second;
}

std::int64_t
ParamMap::getInt(const std::string &name) const
{
    return parseInt(name, raw(name));
}

double
ParamMap::getReal(const std::string &name) const
{
    return parseReal(name, raw(name));
}

bool
ParamMap::getFlag(const std::string &name) const
{
    return parseFlag(name, raw(name));
}

const std::string &
ParamMap::getStr(const std::string &name) const
{
    return raw(name);
}

std::uint64_t
ParamMap::getUint(const std::string &name) const
{
    const std::int64_t v = getInt(name);
    if (v < 0)
        throw ParamError("parameter '" + name + "' must be >= 0");
    return static_cast<std::uint64_t>(v);
}

std::uint32_t
ParamMap::getUint32(const std::string &name) const
{
    const std::uint64_t v = getUint(name);
    if (v > UINT32_MAX)
        throw ParamError("parameter '" + name + "' is out of range");
    return static_cast<std::uint32_t>(v);
}

ParamMap
resolveParams(const std::vector<ParamSpec> &specs,
              const std::map<std::string, std::string> &overrides)
{
    ParamMap out;
    for (const auto &spec : specs)
        out.values_[spec.name] = spec.default_value;

    for (const auto &[name, value] : overrides) {
        if (!out.values_.count(name)) {
            std::ostringstream os;
            os << "unknown parameter '" << name << "'; valid parameters:";
            if (specs.empty())
                os << " (none)";
            for (const auto &spec : specs)
                os << " " << spec.name;
            throw ParamError(os.str());
        }
        out.values_[name] = value;
    }

    // Type-check every final value (defaults included, so a bad default
    // fails loudly in tests rather than at first use).
    for (const auto &spec : specs) {
        const std::string &value = out.values_[spec.name];
        switch (spec.type) {
          case ParamType::Int:
            parseInt(spec.name, value);
            break;
          case ParamType::Real:
            parseReal(spec.name, value);
            break;
          case ParamType::Flag:
            parseFlag(spec.name, value);
            break;
          case ParamType::Str:
            break;
          case ParamType::Choice: {
            const auto it = std::find(spec.choices.begin(),
                                      spec.choices.end(), value);
            if (it == spec.choices.end()) {
                std::ostringstream os;
                os << "parameter '" << spec.name << "': '" << value
                   << "' is not one of:";
                for (const auto &c : spec.choices)
                    os << " " << c;
                throw ParamError(os.str());
            }
            break;
          }
        }
    }
    return out;
}

} // namespace lruleak::core
