/**
 * @file
 * `lruleak bench` implementation.
 */

#include "core/bench.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>
#include <ostream>

#include "channel/session.hpp"
#include "exec/trace_program.hpp"
#include "sim/access_port.hpp"
#include "sim/cache_set.hpp"
#include "sim/hierarchy.hpp"
#include "sim/random.hpp"
#include "spectre/transient_core.hpp"
#include "spectre/victim.hpp"

namespace lruleak::core {

namespace {

using sim::Addr;

/**
 * Faithful copy of the SEED CacheSet (PR 1 state): an array-of-structs
 * line vector plus a heap-allocated virtual replacement policy, one
 * virtual dispatch per access.  This is the baseline lane the redesign
 * is measured against; it must keep the old code shape, so don't "fix"
 * it.  The access body is the seed's Fig. 10 flow chart verbatim
 * (PL-mode branches included) and stays out of line because the seed
 * compiled it in its own translation unit — per-access calls never
 * inlined into the experiment loops.
 */
class LegacySet
{
  public:
    LegacySet(std::uint32_t ways, sim::ReplPolicyKind kind,
              std::uint64_t seed)
        : ways_(ways), lines_(ways),
          policy_(sim::makeReplacementPolicy(kind, ways, seed))
    {}

    struct LineState
    {
        Addr tag = 0;
        bool valid = false;
        bool locked = false;
        std::uint16_t utag = 0;
        sim::ThreadId filled_by = 0;
    };

    struct Result
    {
        bool hit = false;
        std::uint32_t way = sim::kNoWay;
        bool filled = false;
        bool bypassed = false;
        bool utag_mismatch = false;
        std::optional<Addr> evicted_tag;
    };

    [[gnu::noinline]] Result
    access(Addr tag, std::uint16_t utag, bool check_utag,
           sim::LockReq lock_req, sim::ThreadId thread)
    {
        Result res;

        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (lines_[w].valid && lines_[w].tag == tag) {
                res.hit = true;
                res.way = w;
                LineState &line = lines_[w];
                if (check_utag && line.utag != utag) {
                    res.utag_mismatch = true;
                    line.utag = utag;
                }
                policy_->touch(w);
                if (lock_req == sim::LockReq::Lock)
                    line.locked = true;
                else if (lock_req == sim::LockReq::Unlock)
                    line.locked = false;
                return res;
            }
        }

        std::uint32_t victim = sim::kNoWay;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (!lines_[w].valid) {
                victim = w;
                break;
            }
        }
        if (victim == sim::kNoWay) {
            victim = policy_->selectVictim();
            res.evicted_tag = lines_[victim].tag;
        }
        LineState &line = lines_[victim];
        line.tag = tag;
        line.valid = true;
        line.locked = false;
        line.utag = utag;
        line.filled_by = thread;
        policy_->onFill(victim);
        res.way = victim;
        res.filled = true;
        return res;
    }

  private:
    std::uint32_t ways_;
    std::vector<LineState> lines_;
    std::unique_ptr<sim::ReplacementPolicy> policy_;
};

/** The shared tag trace of one workload, replayed cyclically. */
std::vector<Addr>
makeTrace(const SimBenchConfig &config, BenchWorkload workload)
{
    // A bounded trace replayed cyclically keeps memory flat while the
    // access count scales.
    const std::size_t len = static_cast<std::size_t>(
        std::min<std::uint64_t>(config.accesses, 1u << 20));
    std::vector<Addr> trace(len);
    switch (workload) {
      case BenchWorkload::Seq1Walk:
        // Paper Sequence 1: lines 0..N in order (N+1 tags in an N-way
        // set) — the channel init/decode walk and the Table I loop.
        for (std::size_t i = 0; i < len; ++i)
            trace[i] = 1 + (i % (config.ways + 1));
        break;
      case BenchWorkload::HotMix: {
        sim::Xoshiro256 rng(config.seed);
        for (auto &tag : trace) {
            if (rng.chance(config.hot_fraction))
                tag = 1 + rng.below(config.hot_tags);
            else
                tag = 1000 + rng.below(config.cold_tags);
        }
        break;
      }
    }
    return trace;
}

using Clock = std::chrono::steady_clock;

double
accessesPerSecond(std::uint64_t accesses, Clock::time_point start,
                  Clock::time_point stop)
{
    const double secs =
        std::chrono::duration<double>(stop - start).count();
    return secs > 0.0 ? static_cast<double>(accesses) / secs : 0.0;
}

/** Fold a result into the anti-DCE checksum. */
inline std::uint64_t
fold(std::uint64_t sink, std::uint32_t way, bool hit)
{
    return sink + way + (hit ? 1 : 0);
}

// Keep the checksum observable so no lane gets optimised away.
volatile std::uint64_t g_bench_sink = 0;

double
benchLegacy(const SimBenchConfig &config, sim::ReplPolicyKind kind,
            const std::vector<Addr> &trace)
{
    LegacySet set(config.ways, kind, config.seed);
    std::uint64_t sink = 0;
    std::size_t pos = 0;
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < config.accesses; ++i) {
        const auto res =
            set.access(trace[pos], 0, false, sim::LockReq::None, 0);
        if (++pos == trace.size())
            pos = 0;
        sink = fold(sink, res.way, res.hit);
    }
    const auto stop = Clock::now();
    g_bench_sink = g_bench_sink + sink;
    return accessesPerSecond(config.accesses, start, stop);
}

double
benchValue(const SimBenchConfig &config, sim::ReplPolicyKind kind,
           const std::vector<Addr> &trace)
{
    sim::CacheSet set(config.ways,
                      sim::ReplState::make(kind, config.ways, config.seed));
    std::uint64_t sink = 0;
    std::size_t pos = 0;
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < config.accesses; ++i) {
        const auto res = set.access(trace[pos], 0, false,
                                    sim::LockReq::None, 0);
        if (++pos == trace.size())
            pos = 0;
        sink = fold(sink, res.way, res.hit);
    }
    const auto stop = Clock::now();
    g_bench_sink = g_bench_sink + sink;
    return accessesPerSecond(config.accesses, start, stop);
}

double
benchReplay(const SimBenchConfig &config, sim::ReplPolicyKind kind,
            const std::vector<Addr> &trace)
{
    sim::CacheSet set(config.ways,
                      sim::ReplState::make(kind, config.ways, config.seed));
    std::uint64_t sink = 0;
    std::uint64_t done = 0;
    std::size_t pos = 0;
    const auto start = Clock::now();
    while (done < config.accesses) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(config.batch,
                                    config.accesses - done));
        const std::size_t run = std::min(n, trace.size() - pos);
        const auto stats = set.replayBatch(
            std::span<const Addr>(trace.data() + pos, run));
        sink += stats.hits + stats.fills;
        pos = (pos + run) % trace.size();
        done += run;
    }
    const auto stop = Clock::now();
    g_bench_sink = g_bench_sink + sink;
    return accessesPerSecond(config.accesses, start, stop);
}

double
benchBatch(const SimBenchConfig &config, sim::ReplPolicyKind kind,
           const std::vector<Addr> &trace)
{
    sim::CacheSet set(config.ways,
                      sim::ReplState::make(kind, config.ways, config.seed));
    std::vector<sim::SetAccessResult> results(config.batch);
    std::uint64_t sink = 0;
    std::uint64_t done = 0;
    std::size_t pos = 0;
    const auto start = Clock::now();
    while (done < config.accesses) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(config.batch,
                                    config.accesses - done));
        // The trace is replayed cyclically; feed contiguous runs so the
        // batch sees one span (wrap mid-trace by splitting the chunk).
        const std::size_t run =
            std::min(n, trace.size() - pos);
        set.accessBatch(std::span<const Addr>(trace.data() + pos, run),
                        std::span<sim::SetAccessResult>(results.data(),
                                                        run));
        for (std::size_t i = 0; i < run; ++i)
            sink = fold(sink, results[i].way, results[i].hit);
        pos = (pos + run) % trace.size();
        done += run;
    }
    const auto stop = Clock::now();
    g_bench_sink = g_bench_sink + sink;
    return accessesPerSecond(config.accesses, start, stop);
}

} // namespace

std::string_view
benchWorkloadName(BenchWorkload w)
{
    switch (w) {
      case BenchWorkload::Seq1Walk: return "seq1_walk";
      case BenchWorkload::HotMix:   return "hot_mix";
    }
    return "unknown";
}

std::vector<MacroBenchRow>
runMacroBench(const SimBenchConfig &config)
{
    // Per-lane op counts scale with --accesses (and therefore shrink
    // under --smoke); the expensive end-to-end lanes scale sublinearly.
    const std::uint64_t fast_ops =
        std::max<std::uint64_t>(config.accesses / 4, 10'000);
    const std::uint64_t walk_ops =
        std::max<std::uint64_t>(config.accesses / 8, 5'000);
    // Sized for the Session fast path: bits are ~25x cheaper than they
    // were pre-overhaul, so a full-scale run times 160 bits per lane —
    // a multi-millisecond window that measures the steady-state per-bit
    // cost instead of timer noise.
    const std::uint64_t channel_bits =
        std::max<std::uint64_t>(config.accesses / 25'000, 4);
    const std::uint64_t victim_calls =
        std::max<std::uint64_t>(config.accesses / 2'000, 200);

    std::vector<MacroBenchRow> rows;

    {
        // L1 hit path: one resident line accessed repeatedly.
        sim::Cache cache(sim::CacheConfig::intelL1d());
        const auto ref = sim::MemRef::load(0x40);
        cache.access(ref);
        std::uint64_t sink = 0;
        const auto start = Clock::now();
        for (std::uint64_t i = 0; i < fast_ops; ++i)
            sink = fold(sink, cache.access(ref).way, true);
        const auto stop = Clock::now();
        g_bench_sink = g_bench_sink + sink;
        rows.push_back({"cache_access_hit", fast_ops,
                        accessesPerSecond(fast_ops, start, stop)});
    }
    {
        // Streaming miss path: every access fills a new line.
        sim::Cache cache(sim::CacheConfig::intelL1d());
        sim::Addr addr = 0;
        std::uint64_t sink = 0;
        const auto start = Clock::now();
        for (std::uint64_t i = 0; i < fast_ops; ++i) {
            sink = fold(sink, cache.access(sim::MemRef::load(addr)).way,
                        false);
            addr += 64;
        }
        const auto stop = Clock::now();
        g_bench_sink = g_bench_sink + sink;
        rows.push_back({"cache_miss_stream", fast_ops,
                        accessesPerSecond(fast_ops, start, stop)});
    }
    {
        // Full three-level hierarchy walk over a large random footprint.
        sim::CacheHierarchy h;
        sim::Xoshiro256 rng(config.seed + 1);
        std::uint64_t sink = 0;
        const auto start = Clock::now();
        for (std::uint64_t i = 0; i < walk_ops; ++i) {
            const auto res =
                h.access(sim::MemRef::load(rng.below(1 << 22) * 64));
            sink += static_cast<std::uint64_t>(res.level);
        }
        const auto stop = Clock::now();
        g_bench_sink = g_bench_sink + sink;
        rows.push_back({"hierarchy_walk", walk_ops,
                        accessesPerSecond(walk_ops, start, stop)});
    }
    {
        // Trace-fed hierarchy replay: the fleet front end's fast path
        // (workload::TraceFile pumped through AccessPort::accessBatch),
        // on a mixed load/store trace so the write path is in the lane.
        const auto trace = workload::generateTrace(
            "gccmix", static_cast<std::size_t>(walk_ops),
            config.seed + 5, 0.2);
        sim::CacheHierarchy h;
        sim::SingleCorePort port(h);
        {
            // Warm-up: first-touch page faults of the ref/level buffers
            // and the trace pages stay out of the measured window.
            workload::TraceFile warm;
            warm.records.assign(
                trace.records.begin(),
                trace.records.begin() +
                    std::min<std::size_t>(trace.size(), 10'000));
            exec::replayTrace(port, 0, warm);
            h.reset();
        }
        const auto start = Clock::now();
        const auto stats = exec::replayTrace(port, 0, trace);
        const auto stop = Clock::now();
        g_bench_sink = g_bench_sink + stats.hits;
        rows.push_back({"trace_replay_access", stats.accesses,
                        accessesPerSecond(stats.accesses, start, stop)});
    }
    {
        // End-to-end covert-channel bits through the execution engine
        // (RoundRobinSmt over the single-core hierarchy), on the
        // Session fast path: pooled topology, memoized calibration,
        // batched walks, sender paced at the receiver's sampling
        // period.
        channel::SessionConfig cfg;
        cfg.channel = channel::ChannelId::LruAlg1;
        cfg.message = channel::Bits{1, 0, 1, 1};
        cfg.repeats = static_cast<std::uint32_t>(
            std::max<std::uint64_t>(channel_bits / 4, 1));
        cfg.batch_walks = true;
        cfg.encode_gap = static_cast<std::uint32_t>(cfg.tr);
        cfg.seed = config.seed + 3;
        const std::uint64_t bits = cfg.message.size() * cfg.repeats;
        {
            // Warm-up session: fills the thread-local topology pool
            // and the calibration memo so the measured window covers
            // the steady-state per-bit cost, not one-time setup.
            channel::SessionConfig warm = cfg;
            warm.repeats = 1;
            channel::runSession(warm);
        }
        const auto start = Clock::now();
        const auto res = channel::runSession(cfg);
        const auto stop = Clock::now();
        g_bench_sink = g_bench_sink + res.received.size();
        rows.push_back({"covert_channel_bit", bits,
                        accessesPerSecond(bits, start, stop)});
    }
    {
        // Cross-core bits: LowestClock over the multi-core hierarchy,
        // same fast-path methodology as the covert lane.
        channel::SessionConfig cfg;
        cfg.channel = channel::ChannelId::XCoreLruAlg2;
        cfg.mode = channel::SharingMode::CrossCore;
        cfg.d = 12;
        cfg.tr = 3000;
        cfg.ts = 30000;
        cfg.llc_policy = sim::ReplPolicyKind::TreePlru;
        cfg.message = channel::Bits{1, 0, 1, 1};
        cfg.repeats = static_cast<std::uint32_t>(
            std::max<std::uint64_t>(channel_bits / 4, 1));
        cfg.batch_walks = true;
        cfg.encode_gap = static_cast<std::uint32_t>(cfg.tr);
        cfg.seed = config.seed + 4;
        const std::uint64_t bits = cfg.message.size() * cfg.repeats;
        {
            channel::SessionConfig warm = cfg;
            warm.repeats = 1;
            channel::runSession(warm);
        }
        const auto start = Clock::now();
        const auto res = channel::runSession(cfg);
        const auto stop = Clock::now();
        g_bench_sink = g_bench_sink + res.received.size();
        rows.push_back({"xcore_channel_bit", bits,
                        accessesPerSecond(bits, start, stop)});
    }
    {
        // Transient victim calls (the Spectre harness inner loop).
        sim::CacheHierarchy h;
        spectre::SpectreVictim victim("x");
        spectre::TransientCore core(h, timing::Uarch::intelXeonE52690());
        for (int i = 0; i < 6; ++i)
            core.callVictim(victim, 0, spectre::GadgetPart::LowSixBits);
        std::uint64_t sink = 0;
        const auto start = Clock::now();
        for (std::uint64_t i = 0; i < victim_calls; ++i) {
            sink += core.callVictim(victim,
                                    spectre::SpectreVictim::maliciousX(0),
                                    spectre::GadgetPart::LowSixBits)
                        .load2_landed
                        ? 1
                        : 0;
        }
        const auto stop = Clock::now();
        g_bench_sink = g_bench_sink + sink;
        rows.push_back({"spectre_victim_call", victim_calls,
                        accessesPerSecond(victim_calls, start, stop)});
    }

    return rows;
}

std::vector<SimBenchRow>
runSimBench(const SimBenchConfig &config)
{
    const auto policies = config.policies.empty()
                              ? sim::allReplPolicyKinds()
                              : config.policies;

    std::vector<SimBenchRow> rows;
    rows.reserve(2 * policies.size());
    for (auto workload : {BenchWorkload::Seq1Walk, BenchWorkload::HotMix}) {
        const auto trace = makeTrace(config, workload);
        for (auto kind : policies) {
            SimBenchRow row;
            row.workload = workload;
            row.policy = kind;
            // Warm-up pass per lane keeps the first-touch page faults
            // and frequency ramp out of the measured window.
            {
                SimBenchConfig warm = config;
                warm.accesses = std::min<std::uint64_t>(config.accesses,
                                                        100'000);
                benchLegacy(warm, kind, trace);
                benchValue(warm, kind, trace);
                benchBatch(warm, kind, trace);
                benchReplay(warm, kind, trace);
            }
            row.legacy_aps = benchLegacy(config, kind, trace);
            row.value_aps = benchValue(config, kind, trace);
            row.batch_aps = benchBatch(config, kind, trace);
            row.replay_aps = benchReplay(config, kind, trace);
            rows.push_back(row);
        }
    }
    return rows;
}

bool
checkSimBench(const BenchCheckConfig &check,
              const std::vector<SimBenchRow> &rows,
              const std::vector<MacroBenchRow> &macro, std::ostream &os)
{
    bool ok = true;
    for (const auto &row : rows) {
        if (row.replayOverLegacy() < check.replay_ratio_floor) {
            os << "CHECK FAILED: " << benchWorkloadName(row.workload)
               << "/" << sim::replPolicyName(row.policy)
               << " replay_over_legacy " << row.replayOverLegacy()
               << " < " << check.replay_ratio_floor << "\n";
            ok = false;
        }
    }
    const auto macroFloor = [&](const char *lane, double floor) {
        for (const auto &row : macro) {
            if (row.name != lane)
                continue;
            if (row.items_per_sec < floor) {
                os << "CHECK FAILED: " << lane << " " << row.items_per_sec
                   << " items/s < floor " << floor << "\n";
                ok = false;
            }
            return;
        }
        os << "CHECK FAILED: lane '" << lane << "' missing from run\n";
        ok = false;
    };
    macroFloor("covert_channel_bit", check.covert_bit_floor);
    macroFloor("xcore_channel_bit", check.xcore_bit_floor);
    macroFloor("trace_replay_access", check.trace_replay_floor);
    return ok;
}

void
writeSimBenchJson(const SimBenchConfig &config,
                  const std::vector<SimBenchRow> &rows,
                  const std::vector<MacroBenchRow> &macro, std::ostream &os)
{
    os << "{\n"
       << "  \"bench\": \"sim_access\",\n"
       << "  \"unit\": \"accesses_per_second\",\n"
       << "  \"accesses\": " << config.accesses << ",\n"
       << "  \"ways\": " << config.ways << ",\n"
       << "  \"batch\": " << config.batch << ",\n"
       << "  \"seed\": " << config.seed << ",\n"
       << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &row = rows[i];
        os << "    {\"workload\": \"" << benchWorkloadName(row.workload)
           << "\", \"policy\": \"" << sim::replPolicyName(row.policy)
           << "\", \"legacy_virtual\": " << row.legacy_aps
           << ", \"value_access\": " << row.value_aps
           << ", \"value_batch\": " << row.batch_aps
           << ", \"value_replay\": " << row.replay_aps
           << ", \"batch_over_legacy\": " << row.batchOverLegacy()
           << ", \"replay_over_legacy\": " << row.replayOverLegacy()
           << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ],\n"
       << "  \"macro\": [\n";
    for (std::size_t i = 0; i < macro.size(); ++i) {
        os << "    {\"lane\": \"" << macro[i].name
           << "\", \"items\": " << macro[i].items
           << ", \"items_per_second\": " << macro[i].items_per_sec << "}"
           << (i + 1 < macro.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace lruleak::core
