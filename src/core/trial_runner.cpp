/**
 * @file
 * Trial runner worker-count policy.
 */

#include "core/trial_runner.hpp"

#include <cstdlib>
#include <string>

namespace lruleak::core {

unsigned
defaultTrialThreads()
{
    if (const char *env = std::getenv("LRULEAK_THREADS")) {
        try {
            const long n = std::stol(env);
            if (n >= 1)
                return static_cast<unsigned>(n);
        } catch (...) {
            // fall through to hardware concurrency
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace lruleak::core
