/**
 * @file
 * ResultSink emitter implementations.
 */

#include "core/result_sink.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace lruleak::core {

namespace {

/** Shortest round-trippable rendering of a double for JSON/CSV. */
std::string
numberToString(double v)
{
    if (std::isnan(v))
        return "null";
    if (std::isinf(v))
        return v > 0 ? "1e308" : "-1e308";
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    for (int precision = 1; precision < 17; ++precision) {
        char shorter[64];
        std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
        double parsed = 0.0;
        std::sscanf(shorter, "%lf", &parsed);
        if (parsed == v)
            return shorter;
    }
    return buf;
}

std::string
csvQuote(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (unsigned char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

// ------------------------------------------------------------ TableSink

void
TableSink::begin(const std::string &, const std::string &,
                 const ParamMap &)
{
    // The experiments print their own headers through note(), matching
    // the seed bench binaries' output byte-for-byte where possible.
}

void
TableSink::note(const std::string &text)
{
    os_ << text << "\n";
}

void
TableSink::table(const std::string &title, const Table &table)
{
    if (!title.empty())
        os_ << "\n" << title << "\n";
    table.print(os_);
}

void
TableSink::scalar(const std::string &name, double value)
{
    os_ << name << " = " << numberToString(value) << "\n";
}

void
TableSink::series(const std::string &title,
                  const std::vector<double> &values,
                  std::size_t chart_height)
{
    if (!title.empty())
        os_ << title << "\n";
    os_ << asciiChart(values, chart_height, 100);
}

void
TableSink::text(const std::string &title, const std::string &body)
{
    if (!title.empty())
        os_ << title << "\n";
    os_ << body;
    if (!body.empty() && body.back() != '\n')
        os_ << "\n";
}

void
TableSink::end()
{
}

// ------------------------------------------------------------- JsonSink

void
JsonSink::begin(const std::string &experiment,
                const std::string &description, const ParamMap &params)
{
    first_result_ = true; // the sink may be reused for another run
    os_ << "{\n  \"experiment\": \"" << jsonEscape(experiment) << "\",\n"
        << "  \"description\": \"" << jsonEscape(description) << "\",\n"
        << "  \"params\": {";
    bool first = true;
    for (const auto &[name, value] : params.values()) {
        os_ << (first ? "" : ", ") << "\"" << jsonEscape(name) << "\": \""
            << jsonEscape(value) << "\"";
        first = false;
    }
    os_ << "},\n  \"results\": [";
}

void
JsonSink::beginResult()
{
    os_ << (first_result_ ? "" : ",") << "\n    ";
    first_result_ = false;
}

void
JsonSink::note(const std::string &text)
{
    beginResult();
    os_ << "{\"kind\": \"note\", \"text\": \"" << jsonEscape(text)
        << "\"}";
}

void
JsonSink::table(const std::string &title, const Table &table)
{
    beginResult();
    os_ << "{\"kind\": \"table\", \"title\": \"" << jsonEscape(title)
        << "\", \"header\": [";
    bool first = true;
    for (const auto &cell : table.headerCells()) {
        os_ << (first ? "" : ", ") << "\"" << jsonEscape(cell) << "\"";
        first = false;
    }
    os_ << "], \"rows\": [";
    bool first_row = true;
    for (const auto &row : table.rowCells()) {
        os_ << (first_row ? "" : ",") << "\n      [";
        bool first_cell = true;
        for (const auto &cell : row) {
            os_ << (first_cell ? "" : ", ") << "\"" << jsonEscape(cell)
                << "\"";
            first_cell = false;
        }
        os_ << "]";
        first_row = false;
    }
    if (!table.rowCells().empty())
        os_ << "\n    ";
    os_ << "]}";
}

void
JsonSink::scalar(const std::string &name, double value)
{
    beginResult();
    os_ << "{\"kind\": \"scalar\", \"name\": \"" << jsonEscape(name)
        << "\", \"value\": " << numberToString(value) << "}";
}

void
JsonSink::series(const std::string &title,
                 const std::vector<double> &values, std::size_t)
{
    beginResult();
    os_ << "{\"kind\": \"series\", \"title\": \"" << jsonEscape(title)
        << "\", \"values\": [";
    bool first = true;
    for (double v : values) {
        os_ << (first ? "" : ", ") << numberToString(v);
        first = false;
    }
    os_ << "]}";
}

void
JsonSink::text(const std::string &title, const std::string &body)
{
    beginResult();
    os_ << "{\"kind\": \"text\", \"title\": \"" << jsonEscape(title)
        << "\", \"body\": \"" << jsonEscape(body) << "\"}";
}

void
JsonSink::end()
{
    os_ << "\n  ]\n}\n";
}

// -------------------------------------------------------------- CsvSink

void
CsvSink::begin(const std::string &experiment, const std::string &,
               const ParamMap &params)
{
    os_ << "# experiment: " << experiment << "\n";
    for (const auto &[name, value] : params.values())
        os_ << "# param: " << name << "=" << value << "\n";
}

void
CsvSink::note(const std::string &text)
{
    std::string line = "# ";
    for (char c : text) {
        if (c == '\n') {
            os_ << line << "\n";
            line = "# ";
        } else {
            line += c;
        }
    }
    os_ << line << "\n";
}

void
CsvSink::table(const std::string &title, const Table &table)
{
    os_ << "# table: " << (title.empty() ? "(untitled)" : title) << "\n";
    bool first = true;
    for (const auto &cell : table.headerCells()) {
        os_ << (first ? "" : ",") << csvQuote(cell);
        first = false;
    }
    os_ << "\n";
    for (const auto &row : table.rowCells()) {
        first = true;
        for (const auto &cell : row) {
            os_ << (first ? "" : ",") << csvQuote(cell);
            first = false;
        }
        os_ << "\n";
    }
}

void
CsvSink::scalar(const std::string &name, double value)
{
    scalars_.emplace_back(name, value);
}

void
CsvSink::series(const std::string &title,
                const std::vector<double> &values, std::size_t)
{
    os_ << "# series: " << title << "\nindex,value\n";
    for (std::size_t i = 0; i < values.size(); ++i)
        os_ << i << "," << numberToString(values[i]) << "\n";
}

void
CsvSink::text(const std::string &title, const std::string &)
{
    os_ << "# text block omitted: "
        << (title.empty() ? "(untitled)" : title) << "\n";
}

void
CsvSink::end()
{
    if (scalars_.empty())
        return;
    os_ << "# scalars\nname,value\n";
    for (const auto &[name, value] : scalars_)
        os_ << csvQuote(name) << "," << numberToString(value) << "\n";
}

// -------------------------------------------------------------- factory

OutputFormat
outputFormatFromName(std::string_view name)
{
    if (name == "table")
        return OutputFormat::Table;
    if (name == "json")
        return OutputFormat::Json;
    if (name == "csv")
        return OutputFormat::Csv;
    throw std::invalid_argument("unknown output format '" +
                                std::string(name) +
                                "' (expected table, json or csv)");
}

std::unique_ptr<ResultSink>
makeSink(OutputFormat format, std::ostream &os)
{
    switch (format) {
      case OutputFormat::Table: return std::make_unique<TableSink>(os);
      case OutputFormat::Json:  return std::make_unique<JsonSink>(os);
      case OutputFormat::Csv:   return std::make_unique<CsvSink>(os);
    }
    throw std::invalid_argument("bad OutputFormat");
}

} // namespace lruleak::core
