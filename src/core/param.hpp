/**
 * @file
 * Declarative experiment parameters.
 *
 * Every registered experiment publishes a list of ParamSpec: name, type,
 * default and help text.  The CLI (and any other driver) turns
 * `--name=value` overrides into a validated ParamMap with
 * resolveParams(); experiments then read typed values out of the map in
 * their run() bodies without touching parsing code.
 */

#ifndef LRULEAK_CORE_PARAM_HPP
#define LRULEAK_CORE_PARAM_HPP

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace lruleak::core {

/** Value domain of one parameter. */
enum class ParamType
{
    Int,    //!< signed 64-bit integer
    Real,   //!< double
    Flag,   //!< boolean: true/false/1/0/yes/no/on/off
    Str,    //!< free-form string
    Choice, //!< one of an enumerated token set
};

std::string_view paramTypeName(ParamType type);

/** Declaration of one experiment knob. */
struct ParamSpec
{
    std::string name;
    ParamType type = ParamType::Str;
    std::string default_value;
    std::string description;
    std::vector<std::string> choices; //!< Choice only

    static ParamSpec integer(std::string name, std::int64_t def,
                             std::string description);
    static ParamSpec real(std::string name, double def,
                          std::string description);
    static ParamSpec flag(std::string name, bool def,
                          std::string description);
    static ParamSpec str(std::string name, std::string def,
                         std::string description);
    static ParamSpec choice(std::string name, std::string def,
                            std::string description,
                            std::vector<std::string> choices);
};

/** Thrown on unknown parameter names, type errors or bad choices. */
class ParamError : public std::runtime_error
{
  public:
    explicit ParamError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/**
 * Validated name -> value map.  Every declared parameter is present
 * (overridden or defaulted); getters re-parse the stored text, which
 * resolveParams() has already guaranteed to be well-formed.
 */
class ParamMap
{
  public:
    bool has(const std::string &name) const;

    std::int64_t getInt(const std::string &name) const;
    double getReal(const std::string &name) const;
    bool getFlag(const std::string &name) const;
    const std::string &getStr(const std::string &name) const;

    /** Unsigned convenience wrappers (negative values throw). */
    std::uint64_t getUint(const std::string &name) const;
    std::uint32_t getUint32(const std::string &name) const;

    /** Raw values in declaration-independent sorted order. */
    const std::map<std::string, std::string> &values() const
    {
        return values_;
    }

  private:
    friend ParamMap resolveParams(
        const std::vector<ParamSpec> &specs,
        const std::map<std::string, std::string> &overrides);

    const std::string &raw(const std::string &name) const;

    std::map<std::string, std::string> values_;
};

/**
 * Merge @p overrides into the declared defaults and validate everything:
 * unknown names, unparsable Int/Real/Flag values and out-of-set Choice
 * values all throw ParamError with a message naming the valid options.
 */
ParamMap resolveParams(const std::vector<ParamSpec> &specs,
                       const std::map<std::string, std::string> &overrides);

/** Shared parsing primitives (also used by the CLI). */
std::int64_t parseInt(const std::string &name, const std::string &text);
double parseReal(const std::string &name, const std::string &text);
bool parseFlag(const std::string &name, const std::string &text);

} // namespace lruleak::core

#endif // LRULEAK_CORE_PARAM_HPP
