/**
 * @file
 * Table and chart rendering.
 */

#include "core/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace lruleak::core {

void
Table::addRow(std::vector<std::string> row)
{
    row.resize(header_.size());
    rows_.push_back(std::move(row));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << "  ";
            os << row[c];
            for (std::size_t p = row[c].size(); p < widths[c]; ++p)
                os << ' ';
        }
        os << '\n';
    };

    print_row(header_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    for (std::size_t i = 0; i < total; ++i)
        os << '-';
    os << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

std::string
fmtDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtPercent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
fmtKbps(double kbps)
{
    if (kbps >= 1.0)
        return fmtDouble(kbps, 1) + " Kbps";
    return fmtDouble(kbps * 1e3, 2) + " bps";
}

std::string
sparkline(const std::vector<double> &values)
{
    static const char *levels[] = {"▁", "▂", "▃", "▄",
                                   "▅", "▆", "▇", "█"};
    if (values.empty())
        return "";
    double lo = values[0], hi = values[0];
    for (double v : values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    const double span = hi > lo ? hi - lo : 1.0;
    std::string out;
    for (double v : values) {
        const int idx = static_cast<int>((v - lo) / span * 7.0);
        out += levels[std::clamp(idx, 0, 7)];
    }
    return out;
}

std::string
asciiChart(const std::vector<double> &values, std::size_t height,
           std::size_t max_width)
{
    if (values.empty() || height == 0)
        return "";

    // Downsample to max_width columns by averaging buckets.
    std::vector<double> cols;
    const std::size_t n = values.size();
    const std::size_t width = std::min(max_width, n);
    for (std::size_t c = 0; c < width; ++c) {
        const std::size_t lo = c * n / width;
        const std::size_t hi = std::max(lo + 1, (c + 1) * n / width);
        double sum = 0;
        for (std::size_t i = lo; i < hi; ++i)
            sum += values[i];
        cols.push_back(sum / static_cast<double>(hi - lo));
    }

    double lo = cols[0], hi = cols[0];
    for (double v : cols) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    const double span = hi > lo ? hi - lo : 1.0;

    std::string out;
    for (std::size_t r = 0; r < height; ++r) {
        const double row_top = hi - span * static_cast<double>(r) /
            static_cast<double>(height);
        const double row_bot = hi - span * static_cast<double>(r + 1) /
            static_cast<double>(height);
        char label[32];
        std::snprintf(label, sizeof(label), "%8.1f |", row_top);
        out += label;
        for (double v : cols)
            out += (v > row_bot && v <= row_top + 1e-12) ? '*' : ' ';
        out += '\n';
    }
    return out;
}

} // namespace lruleak::core
