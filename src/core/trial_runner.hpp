/**
 * @file
 * Trial-parallel Monte-Carlo runner with deterministic results.
 *
 * Every experiment in the repro is a loop of independent trials (or
 * independent sweep cells) hammering the simulator.  runTrials() fans
 * those out over a thread pool while keeping the output bit-identical
 * for ANY thread count:
 *
 *  - each trial draws from its own counter-seeded RNG stream
 *    (trialStream(seed, trial)), never from a shared generator;
 *  - results land in a vector indexed by trial, so reductions fold in
 *    trial order no matter which thread finished first.
 *
 * The trial function must be self-contained: it may only touch its own
 * locals, the per-trial RNG it is handed, and read-only captures.
 */

#ifndef LRULEAK_CORE_TRIAL_RUNNER_HPP
#define LRULEAK_CORE_TRIAL_RUNNER_HPP

#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/random.hpp"

namespace lruleak::core {

/**
 * Deterministic per-trial RNG stream: a SplitMix64-whitened function of
 * (seed, trial) only, so trial t sees the same stream regardless of how
 * trials are scheduled across threads.
 */
inline sim::Xoshiro256
trialStream(std::uint64_t seed, std::uint64_t trial)
{
    std::uint64_t s = seed ^ (0x9e3779b97f4a7c15ULL * (trial + 1));
    const std::uint64_t whitened = sim::splitMix64(s);
    return sim::Xoshiro256(whitened);
}

/**
 * Worker count used when runTrials is called with threads = 0: the
 * LRULEAK_THREADS environment variable if set, else the hardware
 * concurrency (min 1).
 */
unsigned defaultTrialThreads();

/**
 * Run @p trials independent trials of @p fn, returning the per-trial
 * results in trial order.
 *
 * @param fn invoked as fn(trial_index, rng) where rng is the trial's
 *        private counter-seeded stream; its return value must be
 *        default-constructible and movable.
 * @param threads worker count; 0 = defaultTrialThreads(), 1 = inline.
 *
 * The first exception thrown by any trial is rethrown on the caller's
 * thread after all workers have stopped.
 */
template <typename Fn>
auto
runTrials(std::uint32_t trials, std::uint64_t seed, Fn &&fn,
          unsigned threads = 0)
    -> std::vector<std::invoke_result_t<Fn &, std::uint32_t,
                                        sim::Xoshiro256 &>>
{
    using Result =
        std::invoke_result_t<Fn &, std::uint32_t, sim::Xoshiro256 &>;
    static_assert(!std::is_void_v<Result>,
                  "trial functions must return their result");
    // Workers write results[t] concurrently, which is only safe when
    // elements occupy distinct memory — std::vector<bool> packs 64
    // elements per word and would race.
    static_assert(!std::is_same_v<Result, bool>,
                  "bool results share packed storage in the results "
                  "vector; return std::uint8_t instead");

    std::vector<Result> results(trials);
    if (trials == 0)
        return results;

    if (threads == 0)
        threads = defaultTrialThreads();
    if (threads > trials)
        threads = trials;

    if (threads <= 1) {
        for (std::uint32_t t = 0; t < trials; ++t) {
            sim::Xoshiro256 rng = trialStream(seed, t);
            results[t] = fn(t, rng);
        }
        return results;
    }

    std::atomic<std::uint32_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;

    auto worker = [&]() {
        for (;;) {
            const std::uint32_t t =
                next.fetch_add(1, std::memory_order_relaxed);
            if (t >= trials || failed.load(std::memory_order_relaxed))
                return;
            try {
                sim::Xoshiro256 rng = trialStream(seed, t);
                results[t] = fn(t, rng);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!error)
                        error = std::current_exception();
                }
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();

    if (error)
        std::rethrow_exception(error);
    return results;
}

/**
 * runTrials followed by an in-order fold: acc = combine(acc, result_t)
 * for t = 0..trials-1.  Deterministic for any thread count.
 */
template <typename Acc, typename Fn, typename Combine>
Acc
runTrialsReduce(std::uint32_t trials, std::uint64_t seed, Fn &&fn,
                Acc acc, Combine &&combine, unsigned threads = 0)
{
    auto results =
        runTrials(trials, seed, static_cast<Fn &&>(fn), threads);
    for (auto &r : results)
        acc = combine(std::move(acc), std::move(r));
    return acc;
}

} // namespace lruleak::core

#endif // LRULEAK_CORE_TRIAL_RUNNER_HPP
