/**
 * @file
 * Umbrella header: one include pulls in the whole lruleak public API.
 *
 * lruleak is a reproduction of "Leaking Information Through Cache LRU
 * States" (Xiong & Szefer, HPCA 2020): a cycle-approximate cache/SMT
 * simulator, the LRU-state covert/side channels built on top of it, the
 * Flush+Reload / Prime+Probe baselines, a Spectre-v1 transient-execution
 * harness, the PL-cache defense study, and the replacement-policy
 * performance study.
 *
 * Layering (lower layers never include higher ones):
 *
 *   sim      -> caches, replacement policies, PL cache, prefetchers
 *   timing   -> CPU models, timestamp counters, measurement primitives
 *   exec     -> thread programs, the engine + arbitration policies
 *   channel  -> LRU channels (Alg 1/2/3), baselines, decoding
 *   leakage  -> empirical MI / capacity estimation over channel traces
 *   spectre  -> transient execution + disclosure primitives
 *   workload -> synthetic SPEC-like suite + CPI model
 *   core     -> experiment runners, histograms, table rendering
 */

#ifndef LRULEAK_CORE_LRULEAK_HPP
#define LRULEAK_CORE_LRULEAK_HPP

// sim
#include "sim/address.hpp"
#include "sim/cache.hpp"
#include "sim/cache_config.hpp"
#include "sim/cache_set.hpp"
#include "sim/hierarchy.hpp"
#include "sim/plcache.hpp"
#include "sim/prefetcher.hpp"
#include "sim/random.hpp"
#include "sim/replacement.hpp"
#include "sim/secure_caches.hpp"
#include "sim/stats.hpp"
#include "sim/way_predictor.hpp"

// timing
#include "timing/pointer_chase.hpp"
#include "timing/uarch.hpp"

// exec
#include "exec/engine.hpp"
#include "exec/op.hpp"

// channel
#include "channel/bitstring.hpp"
#include "channel/channel_factory.hpp"
#include "channel/session.hpp"
#include "channel/decoder.hpp"
#include "channel/edit_distance.hpp"
#include "channel/flush_reload.hpp"
#include "channel/layout.hpp"
#include "channel/lru_channel.hpp"
#include "channel/prime_probe.hpp"

// leakage
#include "leakage/estimator.hpp"
#include "leakage/report.hpp"

// spectre
#include "spectre/attack.hpp"
#include "spectre/branch_predictor.hpp"
#include "spectre/transient_core.hpp"
#include "spectre/victim.hpp"

// workload
#include "workload/cpu_model.hpp"
#include "workload/trace_gen.hpp"

// core
#include "core/experiment.hpp"
#include "core/experiments.hpp"
#include "core/histogram.hpp"
#include "core/param.hpp"
#include "core/result_sink.hpp"
#include "core/table.hpp"

/** Library version. */
#define LRULEAK_VERSION_MAJOR 1
#define LRULEAK_VERSION_MINOR 0
#define LRULEAK_VERSION_PATCH 0

#endif // LRULEAK_CORE_LRULEAK_HPP
