/**
 * @file
 * First-class experiments.
 *
 * An Experiment is one paper artifact (a table, a figure, an ablation)
 * expressed as a named, parameterized, registry-resolvable object:
 *
 *   name()        - stable identifier, equal to the seed bench binary's
 *                   basename (e.g. "tab1_plru_eviction");
 *   description() - one-line summary shown by `lruleak list`;
 *   params()      - declarative ParamSpec set (see core/param.hpp);
 *   run()         - the measurement body, emitting into a ResultSink.
 *
 * Registrations self-register via static Registrar objects (see the
 * LRULEAK_REGISTER_EXPERIMENT macro), so adding an experiment is one
 * translation unit under src/experiments/ and nothing else: the CLI,
 * `run-all`, the catalog tests and the bench wrappers all pick it up
 * through Registry::instance().
 */

#ifndef LRULEAK_CORE_EXPERIMENT_HPP
#define LRULEAK_CORE_EXPERIMENT_HPP

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/param.hpp"
#include "core/result_sink.hpp"

namespace lruleak::core {

/** One registered paper artifact. */
class Experiment
{
  public:
    virtual ~Experiment() = default;

    virtual std::string name() const = 0;
    virtual std::string description() const = 0;
    virtual std::vector<ParamSpec> params() const { return {}; }

    /**
     * Run with validated parameters.  Implementations emit everything
     * through @p sink; begin()/end() are the caller's responsibility
     * (see runExperiment).
     */
    virtual void run(const ParamMap &params, ResultSink &sink) const = 0;

    /**
     * Parameter overrides for a reduced-scale run (CI smoke tests and
     * the golden-snapshot suite; the CLI's `run --smoke`).  The default
     * clamps the conventionally named scale knobs (trials, bits,
     * repeats, samples, measurements, rounds, instructions) toward CI
     * size; experiments with unusual cost drivers override this.  The
     * result must leave the run deterministic and seconds-fast.
     */
    virtual std::map<std::string, std::string> smokeParams() const;
};

/** Name -> Experiment catalog. */
class Registry
{
  public:
    static Registry &instance();

    /** Throws std::logic_error on duplicate names. */
    void add(std::unique_ptr<Experiment> experiment);

    /**
     * nullptr when @p name is not registered.  Accepts '-' for '_'
     * (`lruleak run xcore-error-rate` resolves `xcore_error_rate`), so
     * CLI spellings match the hyphenated channel/uarch token style.
     */
    const Experiment *find(const std::string &name) const;

    /** All experiments, sorted by name. */
    std::vector<const Experiment *> all() const;

    std::size_t size() const { return experiments_.size(); }

  private:
    std::map<std::string, std::unique_ptr<Experiment>> experiments_;
};

/** Static-initialization hook used by LRULEAK_REGISTER_EXPERIMENT. */
struct Registrar
{
    explicit Registrar(std::unique_ptr<Experiment> experiment);
};

#define LRULEAK_REGISTER_EXPERIMENT(cls)                                   \
    static const ::lruleak::core::Registrar lruleak_registrar_##cls{       \
        std::make_unique<cls>()};

/**
 * Resolve overrides against the experiment's ParamSpecs and run it,
 * wrapping the run in sink begin()/end().  Throws ParamError on bad
 * overrides.
 */
void runExperiment(const Experiment &experiment,
                   const std::map<std::string, std::string> &overrides,
                   ResultSink &sink);

/**
 * Bench-wrapper entry point: look @p name up in the registry and run it
 * with default parameters, rendering ASCII tables to stdout.  Returns a
 * process exit code (0 on success).
 */
int runRegisteredExperimentMain(const std::string &name);

} // namespace lruleak::core

#endif // LRULEAK_CORE_EXPERIMENT_HPP
