/**
 * @file
 * Fleet mode: sharded `run-all`, shard-document merge, and the shared
 * run-all renderer.
 *
 * One `run-all` saturates one machine (trial parallelism); the fleet
 * layer scales the catalog *out*:
 *
 *   - shardOf() deterministically partitions the registry by a stable
 *     hash of the experiment NAME (never by list position), so N
 *     workers running `--shard=0/N .. (N-1)/N` cover the catalog
 *     exactly once — and keep covering the same cells when unrelated
 *     experiments are added or removed;
 *
 *   - runAllCatalog() is the one implementation of the run-all
 *     document (the CLI calls it, and the fleet tests call it
 *     directly), including the shard filter and the result-cache
 *     consultation, so shard outputs are byte-compatible with the
 *     unsharded document by construction;
 *
 *   - mergeRunAllJson() unions shard JSON documents back into one:
 *     the union of any N shards is byte-identical to the unsharded
 *     `run-all --format=json`, because each experiment object's raw
 *     bytes are preserved and reassembled in registry (name) order
 *     with the exact separators the renderer uses.
 */

#ifndef LRULEAK_CORE_FLEET_HPP
#define LRULEAK_CORE_FLEET_HPP

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/result_cache.hpp"
#include "core/result_sink.hpp"

namespace lruleak::core {

/** One worker's slice of the catalog: shard @c index of @c count. */
struct ShardSpec
{
    std::uint32_t index = 0; //!< in [0, count)
    std::uint32_t count = 1;
};

/**
 * Parse "i/N" (e.g. "0/3"); throws std::invalid_argument on malformed
 * text, N == 0 or i >= N.
 */
ShardSpec parseShardSpec(const std::string &text);

/**
 * The shard an experiment name belongs to, in [0, count): FNV-1a of
 * the name modulo the shard count.  A pure function of the name — the
 * registry order, the worker, and the rest of the catalog are all
 * irrelevant.
 */
std::uint32_t shardOf(std::string_view name, std::uint32_t count);

/** Does @p name fall into @p shard? */
bool inShard(std::string_view name, const ShardSpec &shard);

/** Knobs of one run-all invocation. */
struct RunAllOptions
{
    OutputFormat format = OutputFormat::Table;
    bool smoke = false;
    std::string seed;               //!< empty: per-experiment defaults
    std::optional<ShardSpec> shard; //!< nullopt: whole catalog
    ResultCache *cache = nullptr;   //!< nullptr: caching off
};

/** What one run-all invocation did (the run summary's numbers). */
struct RunAllOutcome
{
    std::uint64_t ran = 0;     //!< experiments rendered (hit or fresh)
    std::uint64_t skipped = 0; //!< excluded by the shard filter
    std::uint64_t failures = 0;
    CacheCounters cache;
};

/**
 * Render the run-all document over the whole registry into @p out
 * (failures are reported on @p err and skipped, like the CLI always
 * did).  With a shard, only that slice of the catalog is rendered —
 * in the same registry order and with the same separators, so merging
 * the N shard documents reproduces the unsharded bytes.  With a
 * cache, each experiment is looked up before executing and stored
 * after; a hit emits the stored artifact verbatim.
 */
RunAllOutcome runAllCatalog(const RunAllOptions &options,
                            std::ostream &out, std::ostream &err);

/** The one-line run summary ("ran 12, skipped 19 (shard 0/3); cache:
 *  12 hit, 0 miss, 0 skip"). */
std::string runAllSummary(const RunAllOptions &options,
                          const RunAllOutcome &outcome);

/**
 * Union shard JSON documents (each the output of `run-all
 * --format=json`, sharded or not) into one combined document, byte-
 * identical to the unsharded renderer's output over the same
 * experiment set.  Throws std::invalid_argument on a document that is
 * not a run-all JSON array, an object without an "experiment" field,
 * or the same experiment appearing twice.
 */
std::string mergeRunAllJson(const std::vector<std::string> &documents);

} // namespace lruleak::core

#endif // LRULEAK_CORE_FLEET_HPP
