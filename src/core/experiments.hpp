/**
 * @file
 * Shared experiment runners behind the bench binaries.
 *
 * Each function implements the measurement logic of one paper artifact
 * (the benches then only sweep parameters and print).  See DESIGN.md for
 * the experiment-to-module map.
 */

#ifndef LRULEAK_CORE_EXPERIMENTS_HPP
#define LRULEAK_CORE_EXPERIMENTS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "channel/channel_factory.hpp"
#include "channel/session.hpp"
#include "core/histogram.hpp"
#include "sim/replacement.hpp"
#include "timing/uarch.hpp"
#include "workload/cpu_model.hpp"

namespace lruleak::core {

// ------------------------------------------------------------- Table I

/** Warm-up state of the target set before the measured loop. */
enum class InitCondition
{
    Random,     //!< lines 0..7 (and others) accessed in random order
    Sequential, //!< lines 0..7 accessed in order (Sequence 2 warm-up)
};

/** The two access sequences of Section IV-C. */
enum class AccessSequence
{
    Seq1, //!< 0 -> 1 -> ... -> 7 -> 8
    Seq2, //!< 0 (x) 1 (x) ... (x) 7, x inserted with probability 1/2
};

/** Table I study knobs. */
struct EvictionStudyConfig
{
    std::uint32_t ways = 8;
    std::uint32_t trials = 10'000;
    std::uint32_t loop_iterations = 8;
    double x_probability = 0.5;
    std::uint64_t seed = 2020;
};

/**
 * Probability that line 0 has been evicted after each loop iteration
 * (index 0 = after the first iteration), reproducing one cell-column of
 * Table I.
 */
std::vector<double> evictionProbabilities(sim::ReplPolicyKind policy,
                                          InitCondition init,
                                          AccessSequence seq,
                                          const EvictionStudyConfig &config);

// ----------------------------------------------------- Figures 3 and 13

/** Hit/miss latency distributions of a measurement primitive. */
struct LatencyHistograms
{
    Histogram hit;   //!< target served from L1
    Histogram miss;  //!< target served from L2
};

/** Fig. 3: pointer-chase readout distributions. */
LatencyHistograms pointerChaseHistograms(const timing::Uarch &uarch,
                                         std::uint32_t samples = 20'000,
                                         std::uint64_t seed = 3);

/** Fig. 13 (Appendix A): single-access rdtscp readout distributions. */
LatencyHistograms singleAccessHistograms(const timing::Uarch &uarch,
                                         std::uint32_t samples = 20'000,
                                         std::uint64_t seed = 3);

// ------------------------------------------------------------- Table V

/**
 * The channels compared in Tables V and VI — now the library-wide
 * channel::ChannelId (see channel/channel_factory.hpp), so experiment
 * code and the CLI select channels through one name table.
 */
using ChannelKind = channel::ChannelId;

std::string channelKindName(ChannelKind kind);

/**
 * Mean sender encoding latency in cycles (Table V): victim-address
 * arithmetic plus the sender's one memory access at whatever level the
 * channel leaves its line.
 */
double meanEncodeLatency(const timing::Uarch &uarch, ChannelKind kind,
                         std::uint64_t seed = 5);

// ------------------------------------------------------------ Table VI

/** Sender-process miss rates in one co-residency scenario. */
struct MissRateRow
{
    std::string scenario;
    sim::LevelStats l1;
    sim::LevelStats l2;
    sim::LevelStats llc;
};

/**
 * Table VI: the four channels plus the "sender & gcc" and "sender only"
 * baselines; stats are the sender thread's per-level counters.
 */
std::vector<MissRateRow> senderMissRates(const timing::Uarch &uarch,
                                         std::uint64_t seed = 6);

/** Same, over an explicit channel list (CLI --channels path). */
std::vector<MissRateRow>
senderMissRates(const timing::Uarch &uarch,
                const std::vector<ChannelKind> &channels,
                std::uint64_t seed);

// -------------------------------------------------------------- Fig. 9

/**
 * Run the whole synthetic suite under each policy.  Rows come back
 * grouped by workload in suite order, one row per policy.
 */
std::vector<workload::CpuRunResult>
replacementPerformance(const std::vector<sim::ReplPolicyKind> &policies,
                       std::uint64_t instructions = 400'000,
                       std::uint64_t seed = 9);

// ------------------------------------------------------------- Fig. 11

/** Receiver trace of the PL-cache attack (Fig. 11). */
struct PlAttackTrace
{
    std::vector<channel::Sample> samples;
    channel::Bits sent;
    std::uint32_t threshold = 0;
    double error_rate = 0.0;
    bool constant = false; //!< all observations identical (fixed design)
};

/**
 * Run LRU Algorithm 2 against a PL-cache L1 whose victim line the sender
 * has locked; @p mode selects the original (leaky) or fixed design.
 */
PlAttackTrace plCacheAttack(sim::PlMode mode,
                            const timing::Uarch &uarch =
                                timing::Uarch::intelXeonE52690(),
                            std::size_t bits = 24, std::uint64_t seed = 11);

} // namespace lruleak::core

#endif // LRULEAK_CORE_EXPERIMENTS_HPP
