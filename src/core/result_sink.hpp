/**
 * @file
 * Structured experiment output.
 *
 * Experiments never print: they emit notes, tables, scalar metrics,
 * numeric series (figure traces) and preformatted text blocks into a
 * ResultSink.  Three emitters ship with the library:
 *
 *   TableSink - the human-readable ASCII rendering the seed bench
 *               binaries printed (tables via Table::print, series via
 *               asciiChart);
 *   JsonSink  - one JSON object per run, results in emission order;
 *   CsvSink   - tables/series/scalars as CSV blocks, notes as comments.
 *
 * makeSink() picks an emitter from a format name ("table", "json",
 * "csv"), which is how the CLI's --format flag is wired through.
 */

#ifndef LRULEAK_CORE_RESULT_SINK_HPP
#define LRULEAK_CORE_RESULT_SINK_HPP

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/param.hpp"
#include "core/table.hpp"

namespace lruleak::core {

/** Receiver of one experiment run's structured output. */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;

    /** Called once before any result, with the resolved parameters. */
    virtual void begin(const std::string &experiment,
                       const std::string &description,
                       const ParamMap &params) = 0;

    /** Prose: headers, takeaways, paper references. */
    virtual void note(const std::string &text) = 0;

    /** A finished table; @p title may be empty. */
    virtual void table(const std::string &title, const Table &table) = 0;

    /** One named numeric result. */
    virtual void scalar(const std::string &name, double value) = 0;

    /**
     * A numeric series (latency trace, moving average, ...).
     * @p chart_height is a rendering hint for the ASCII emitter.
     */
    virtual void series(const std::string &title,
                        const std::vector<double> &values,
                        std::size_t chart_height = 8) = 0;

    /** Preformatted block (histogram renderings, decoded bit strings). */
    virtual void text(const std::string &title,
                      const std::string &body) = 0;

    /** Called once after the last result. */
    virtual void end() = 0;
};

/** ASCII emitter reproducing the seed benches' terminal output. */
class TableSink : public ResultSink
{
  public:
    explicit TableSink(std::ostream &os)
        : os_(os)
    {}

    void begin(const std::string &experiment,
               const std::string &description,
               const ParamMap &params) override;
    void note(const std::string &text) override;
    void table(const std::string &title, const Table &table) override;
    void scalar(const std::string &name, double value) override;
    void series(const std::string &title,
                const std::vector<double> &values,
                std::size_t chart_height) override;
    void text(const std::string &title, const std::string &body) override;
    void end() override;

  private:
    std::ostream &os_;
};

/** Machine-readable JSON emitter. */
class JsonSink : public ResultSink
{
  public:
    explicit JsonSink(std::ostream &os)
        : os_(os)
    {}

    void begin(const std::string &experiment,
               const std::string &description,
               const ParamMap &params) override;
    void note(const std::string &text) override;
    void table(const std::string &title, const Table &table) override;
    void scalar(const std::string &name, double value) override;
    void series(const std::string &title,
                const std::vector<double> &values,
                std::size_t chart_height) override;
    void text(const std::string &title, const std::string &body) override;
    void end() override;

  private:
    void beginResult();

    std::ostream &os_;
    bool first_result_ = true;
};

/** CSV emitter: one block per table/series, scalars collected at end. */
class CsvSink : public ResultSink
{
  public:
    explicit CsvSink(std::ostream &os)
        : os_(os)
    {}

    void begin(const std::string &experiment,
               const std::string &description,
               const ParamMap &params) override;
    void note(const std::string &text) override;
    void table(const std::string &title, const Table &table) override;
    void scalar(const std::string &name, double value) override;
    void series(const std::string &title,
                const std::vector<double> &values,
                std::size_t chart_height) override;
    void text(const std::string &title, const std::string &body) override;
    void end() override;

  private:
    std::ostream &os_;
    std::vector<std::pair<std::string, double>> scalars_;
};

/** Output formats the CLI exposes. */
enum class OutputFormat
{
    Table,
    Json,
    Csv,
};

/** Parse "table" / "json" / "csv"; throws std::invalid_argument. */
OutputFormat outputFormatFromName(std::string_view name);

/** Construct the emitter for @p format writing to @p os. */
std::unique_ptr<ResultSink> makeSink(OutputFormat format, std::ostream &os);

/** JSON string escaping (shared with tests). */
std::string jsonEscape(const std::string &s);

} // namespace lruleak::core

#endif // LRULEAK_CORE_RESULT_SINK_HPP
