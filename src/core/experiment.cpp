/**
 * @file
 * Experiment registry and runner plumbing.
 */

#include "core/experiment.hpp"

#include <iostream>
#include <stdexcept>

namespace lruleak::core {

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

void
Registry::add(std::unique_ptr<Experiment> experiment)
{
    const std::string name = experiment->name();
    if (!experiments_.emplace(name, std::move(experiment)).second)
        throw std::logic_error("experiment '" + name +
                               "' registered twice");
}

const Experiment *
Registry::find(const std::string &name) const
{
    const auto it = experiments_.find(name);
    return it == experiments_.end() ? nullptr : it->second.get();
}

std::vector<const Experiment *>
Registry::all() const
{
    std::vector<const Experiment *> out;
    out.reserve(experiments_.size());
    for (const auto &[name, experiment] : experiments_)
        out.push_back(experiment.get());
    return out; // std::map iteration order is already name-sorted
}

Registrar::Registrar(std::unique_ptr<Experiment> experiment)
{
    Registry::instance().add(std::move(experiment));
}

void
runExperiment(const Experiment &experiment,
              const std::map<std::string, std::string> &overrides,
              ResultSink &sink)
{
    const ParamMap params = resolveParams(experiment.params(), overrides);
    sink.begin(experiment.name(), experiment.description(), params);
    experiment.run(params, sink);
    sink.end();
}

int
runRegisteredExperimentMain(const std::string &name)
{
    const Experiment *experiment = Registry::instance().find(name);
    if (!experiment) {
        std::cerr << "experiment '" << name
                  << "' is not registered (this wrapper is stale; see "
                     "`lruleak list`)\n";
        return 2;
    }
    try {
        TableSink sink(std::cout);
        runExperiment(*experiment, {}, sink);
    } catch (const std::exception &e) {
        std::cerr << name << ": " << e.what() << "\n";
        return 1;
    }
    return 0;
}

} // namespace lruleak::core
