/**
 * @file
 * Experiment registry and runner plumbing.
 */

#include "core/experiment.hpp"

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <stdexcept>

namespace lruleak::core {

std::map<std::string, std::string>
Experiment::smokeParams() const
{
    // Conventional scale knobs and their CI-sized ceilings.  Only knobs
    // the experiment actually declares are clamped, and only downward:
    // a default below the ceiling stays put.
    static const std::map<std::string, std::int64_t> kCeilings = {
        {"trials", 500},        {"bits", 16},
        {"repeats", 1},         {"samples", 2000},
        {"measurements", 40},   {"rounds", 2},
        {"instructions", 30000}, {"resamples", 50},
    };
    std::map<std::string, std::string> overrides;
    for (const ParamSpec &spec : params()) {
        const auto it = kCeilings.find(spec.name);
        if (it == kCeilings.end() || spec.type != ParamType::Int)
            continue;
        const std::int64_t def = parseInt(spec.name, spec.default_value);
        if (def > it->second)
            overrides[spec.name] = std::to_string(it->second);
    }
    return overrides;
}

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

void
Registry::add(std::unique_ptr<Experiment> experiment)
{
    const std::string name = experiment->name();
    if (!experiments_.emplace(name, std::move(experiment)).second)
        throw std::logic_error("experiment '" + name +
                               "' registered twice");
}

const Experiment *
Registry::find(const std::string &name) const
{
    auto it = experiments_.find(name);
    if (it == experiments_.end()) {
        std::string underscored = name;
        std::replace(underscored.begin(), underscored.end(), '-', '_');
        it = experiments_.find(underscored);
    }
    return it == experiments_.end() ? nullptr : it->second.get();
}

std::vector<const Experiment *>
Registry::all() const
{
    std::vector<const Experiment *> out;
    out.reserve(experiments_.size());
    for (const auto &[name, experiment] : experiments_)
        out.push_back(experiment.get());
    return out; // std::map iteration order is already name-sorted
}

Registrar::Registrar(std::unique_ptr<Experiment> experiment)
{
    Registry::instance().add(std::move(experiment));
}

void
runExperiment(const Experiment &experiment,
              const std::map<std::string, std::string> &overrides,
              ResultSink &sink)
{
    const ParamMap params = resolveParams(experiment.params(), overrides);
    sink.begin(experiment.name(), experiment.description(), params);
    experiment.run(params, sink);
    sink.end();
}

int
runRegisteredExperimentMain(const std::string &name)
{
    const Experiment *experiment = Registry::instance().find(name);
    if (!experiment) {
        std::cerr << "experiment '" << name
                  << "' is not registered (this wrapper is stale; see "
                     "`lruleak list`)\n";
        return 2;
    }
    try {
        TableSink sink(std::cout);
        runExperiment(*experiment, {}, sink);
    } catch (const std::exception &e) {
        std::cerr << name << ": " << e.what() << "\n";
        return 1;
    }
    return 0;
}

} // namespace lruleak::core
