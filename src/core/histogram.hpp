/**
 * @file
 * Latency histogram used to reproduce the measurement figures
 * (Fig. 3, Fig. 13).
 */

#ifndef LRULEAK_CORE_HISTOGRAM_HPP
#define LRULEAK_CORE_HISTOGRAM_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lruleak::core {

/** Integer-bucketed histogram with frequency rendering. */
class Histogram
{
  public:
    explicit Histogram(std::uint32_t bucket_width = 1)
        : bucket_width_(bucket_width ? bucket_width : 1)
    {}

    void
    add(std::uint32_t value)
    {
        ++counts_[value / bucket_width_ * bucket_width_];
        ++total_;
    }

    std::uint64_t total() const { return total_; }
    bool empty() const { return total_ == 0; }

    /** Fraction of samples in the bucket containing @p value. */
    double frequency(std::uint32_t value) const;

    double mean() const;
    std::uint32_t percentile(double p) const; //!< p in [0,1]
    std::uint32_t min() const;
    std::uint32_t max() const;

    /** Bucket -> fraction map (sorted by bucket). */
    std::vector<std::pair<std::uint32_t, double>> normalized() const;

    /**
     * Side-by-side text rendering of two histograms over a shared value
     * axis — the shape of the paper's hit/miss latency figures.
     */
    static std::string renderPair(const Histogram &a, const Histogram &b,
                                  const std::string &label_a,
                                  const std::string &label_b,
                                  std::size_t bar_width = 46);

  private:
    std::uint32_t bucket_width_;
    std::map<std::uint32_t, std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * Overlap coefficient of two distributions: sum over buckets of
 * min(freq_a, freq_b).  1.0 = identical distributions (Fig. 13's point),
 * ~0.0 = fully separable (Fig. 3's point).
 */
double overlapCoefficient(const Histogram &a, const Histogram &b);

} // namespace lruleak::core

#endif // LRULEAK_CORE_HISTOGRAM_HPP
