/**
 * @file
 * Leakage estimator implementation.
 */

#include "leakage/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lruleak::leakage {

namespace {

constexpr double kLn2 = 0.6931471805599453;

double
log2Safe(double x)
{
    return std::log2(x);
}

} // namespace

ConfusionMatrix::ConfusionMatrix(std::size_t inputs, std::size_t outputs)
    : inputs_(inputs), outputs_(outputs), counts_(inputs * outputs, 0)
{
    if (inputs == 0 || outputs == 0)
        throw std::invalid_argument(
            "ConfusionMatrix: alphabets must be non-empty");
}

void
ConfusionMatrix::add(std::size_t x, std::size_t y, std::uint64_t n)
{
    if (x >= inputs_ || y >= outputs_)
        throw std::out_of_range("ConfusionMatrix: symbol out of alphabet");
    counts_[x * outputs_ + y] += n;
}

void
ConfusionMatrix::addPairs(std::span<const std::uint8_t> sent,
                          std::span<const std::uint8_t> decoded)
{
    if (sent.size() != decoded.size())
        throw std::invalid_argument(
            "ConfusionMatrix: sent/decoded traces differ in length");
    for (std::size_t i = 0; i < sent.size(); ++i)
        add(sent[i], decoded[i]);
}

void
ConfusionMatrix::merge(const ConfusionMatrix &other)
{
    if (other.inputs_ != inputs_ || other.outputs_ != outputs_)
        throw std::invalid_argument("ConfusionMatrix: shape mismatch");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
}

std::uint64_t
ConfusionMatrix::rowTotal(std::size_t x) const
{
    std::uint64_t sum = 0;
    for (std::size_t y = 0; y < outputs_; ++y)
        sum += count(x, y);
    return sum;
}

std::uint64_t
ConfusionMatrix::colTotal(std::size_t y) const
{
    std::uint64_t sum = 0;
    for (std::size_t x = 0; x < inputs_; ++x)
        sum += count(x, y);
    return sum;
}

std::uint64_t
ConfusionMatrix::total() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t c : counts_)
        sum += c;
    return sum;
}

double
pluginMutualInformation(const ConfusionMatrix &m)
{
    const double n = static_cast<double>(m.total());
    if (n == 0.0)
        return 0.0;

    double mi = 0.0;
    for (std::size_t x = 0; x < m.inputs(); ++x) {
        const std::uint64_t row = m.rowTotal(x);
        if (row == 0)
            continue;
        for (std::size_t y = 0; y < m.outputs(); ++y) {
            const std::uint64_t nxy = m.count(x, y);
            if (nxy == 0)
                continue;
            const double col = static_cast<double>(m.colTotal(y));
            mi += (static_cast<double>(nxy) / n) *
                  log2Safe(static_cast<double>(nxy) * n /
                           (static_cast<double>(row) * col));
        }
    }
    // Floating-point cancellation can leave a tiny negative residue on
    // an exactly-independent matrix.
    return std::max(mi, 0.0);
}

double
millerMadowMutualInformation(const ConfusionMatrix &m)
{
    const std::uint64_t n = m.total();
    if (n == 0)
        return 0.0;

    std::size_t kx = 0, ky = 0, kxy = 0;
    for (std::size_t x = 0; x < m.inputs(); ++x)
        kx += m.rowTotal(x) > 0 ? 1 : 0;
    for (std::size_t y = 0; y < m.outputs(); ++y)
        ky += m.colTotal(y) > 0 ? 1 : 0;
    for (std::size_t x = 0; x < m.inputs(); ++x) {
        for (std::size_t y = 0; y < m.outputs(); ++y)
            kxy += m.count(x, y) > 0 ? 1 : 0;
    }

    const double correction =
        (static_cast<double>(kx) + static_cast<double>(ky) -
         static_cast<double>(kxy) - 1.0) /
        (2.0 * static_cast<double>(n) * kLn2);
    return std::max(pluginMutualInformation(m) + correction, 0.0);
}

CapacityResult
blahutArimoto(const ConfusionMatrix &m, double tolerance_bits,
              std::size_t max_iterations)
{
    // Restrict to observed inputs: rows with no samples give no
    // information about W(y|x).
    std::vector<std::size_t> support;
    for (std::size_t x = 0; x < m.inputs(); ++x) {
        if (m.rowTotal(x) > 0)
            support.push_back(x);
    }

    CapacityResult res;
    if (support.size() < 2) {
        // 0 or 1 usable input symbols: nothing to choose, capacity 0.
        res.converged = true;
        return res;
    }

    const std::size_t nx = support.size();
    const std::size_t ny = m.outputs();
    const double total = static_cast<double>(m.total());

    // W(y|x) rows and the empirical input distribution, which seeds the
    // iteration: the lower bound I_L starts at the plugin MI and only
    // grows, so the returned capacity dominates it by construction.
    std::vector<double> w(nx * ny, 0.0);
    std::vector<double> p(nx, 0.0);
    for (std::size_t i = 0; i < nx; ++i) {
        const std::size_t x = support[i];
        const double row = static_cast<double>(m.rowTotal(x));
        p[i] = row / total;
        for (std::size_t y = 0; y < ny; ++y)
            w[i * ny + y] = static_cast<double>(m.count(x, y)) / row;
    }

    std::vector<double> q(ny, 0.0);
    std::vector<double> d(nx, 0.0);
    for (std::size_t it = 1; it <= max_iterations; ++it) {
        // Output marginal under the current input distribution.
        for (std::size_t y = 0; y < ny; ++y) {
            double acc = 0.0;
            for (std::size_t i = 0; i < nx; ++i)
                acc += p[i] * w[i * ny + y];
            q[y] = acc;
        }

        // Per-input divergence D(W(.|x) || q); its p-average is the
        // lower capacity bound, its max the upper bound.
        double lower = 0.0;
        double upper = 0.0;
        for (std::size_t i = 0; i < nx; ++i) {
            double acc = 0.0;
            for (std::size_t y = 0; y < ny; ++y) {
                const double wxy = w[i * ny + y];
                if (wxy > 0.0)
                    acc += wxy * log2Safe(wxy / q[y]);
            }
            d[i] = acc;
            lower += p[i] * acc;
            upper = std::max(upper, acc);
        }

        res.capacity_bits = std::max(lower, 0.0);
        res.gap = upper - lower;
        res.iterations = it;
        if (res.gap <= tolerance_bits) {
            res.converged = true;
            return res;
        }

        // Blahut update: p(x) <- p(x) 2^D(x) / Z.
        double z = 0.0;
        for (std::size_t i = 0; i < nx; ++i) {
            p[i] *= std::exp2(d[i]);
            z += p[i];
        }
        for (std::size_t i = 0; i < nx; ++i)
            p[i] /= z;
    }
    return res;
}

ConfusionMatrix
Estimator::matrixFor(std::span<const std::uint8_t> sent,
                     std::span<const std::uint8_t> decoded) const
{
    ConfusionMatrix m(inputs_, outputs_);
    m.addPairs(sent, decoded);
    return m;
}

Estimate
Estimator::score(const ConfusionMatrix &m, double symbol_rate_hz) const
{
    Estimate e;
    e.pairs = m.total();
    e.plugin_bits_per_use = pluginMutualInformation(m);
    e.corrected_bits_per_use = millerMadowMutualInformation(m);
    e.capacity_bits_per_use =
        blahutArimoto(m, ba_tolerance_, ba_max_iter_).capacity_bits;
    e.bits_per_second = e.corrected_bits_per_use * symbol_rate_hz;
    return e;
}

Estimate
Estimator::estimate(std::span<const std::uint8_t> sent,
                    std::span<const std::uint8_t> decoded,
                    double symbol_rate_hz) const
{
    return score(matrixFor(sent, decoded), symbol_rate_hz);
}

} // namespace lruleak::leakage
