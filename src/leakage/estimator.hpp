/**
 * @file
 * Empirical leakage estimation for discrete channels.
 *
 * Every experiment below this layer scores transmissions with an edit
 * distance, which says whether a channel *works* but not how much it
 * *leaks*.  This module turns a session's aligned (sent-symbol,
 * decoded-symbol) pairs into information-theoretic scores:
 *
 *   - the empirical confusion matrix (joint counts n(x, y));
 *   - plugin (maximum-likelihood) mutual information in bits/use;
 *   - the Miller-Madow bias-corrected estimate (the plugin estimator
 *     is biased *up* by roughly (Kxy - Kx - Ky + 1) / 2N nats, which
 *     matters at smoke-scale sample counts);
 *   - Blahut-Arimoto channel capacity over the empirical conditional
 *     distribution W(y|x) — what the channel could carry under the
 *     best input distribution, an upper bound on the plugin MI;
 *   - bits/second, from bits/use and the session's raw symbol rate.
 *
 * Everything here is pure, deterministic double arithmetic over counts
 * in fixed iteration order: the same trace always produces the same
 * score, bit for bit, regardless of LRULEAK_THREADS.
 *
 * The default alphabet matches the channel::Session plumbing: binary
 * input {0, 1}, ternary output {0, 1, erasure} (windows that received
 * no receiver sample decode to channel::kErasureSymbol rather than
 * being dropped, so the pairs stay aligned).
 */

#ifndef LRULEAK_LEAKAGE_ESTIMATOR_HPP
#define LRULEAK_LEAKAGE_ESTIMATOR_HPP

#include <cstdint>
#include <span>
#include <vector>

namespace lruleak::leakage {

/**
 * Empirical joint counts n(x, y) of a discrete memoryless channel:
 * rows are input symbols, columns output symbols.  A small value type;
 * merging two matrices adds their counts (trial pooling).
 */
class ConfusionMatrix
{
  public:
    ConfusionMatrix(std::size_t inputs, std::size_t outputs);

    /** Count @p n observations of input @p x decoded as output @p y. */
    void add(std::size_t x, std::size_t y, std::uint64_t n = 1);

    /**
     * Count one aligned trace: pair i is (sent[i], decoded[i]).
     * Symbols outside the configured alphabets throw std::out_of_range
     * — a mis-sized alphabet is a caller bug, not noise.
     *
     * @pre sent.size() == decoded.size()
     */
    void addPairs(std::span<const std::uint8_t> sent,
                  std::span<const std::uint8_t> decoded);

    /** Pool another matrix's counts into this one (same shape). */
    void merge(const ConfusionMatrix &other);

    std::uint64_t
    count(std::size_t x, std::size_t y) const
    {
        return counts_[x * outputs_ + y];
    }

    std::uint64_t rowTotal(std::size_t x) const;
    std::uint64_t colTotal(std::size_t y) const;
    std::uint64_t total() const;

    std::size_t inputs() const { return inputs_; }
    std::size_t outputs() const { return outputs_; }

  private:
    std::size_t inputs_;
    std::size_t outputs_;
    std::vector<std::uint64_t> counts_; //!< row-major [inputs x outputs]
};

/**
 * Plugin (maximum-likelihood) mutual information of the empirical
 * joint distribution, in bits per channel use.  0 for an empty matrix.
 */
double pluginMutualInformation(const ConfusionMatrix &m);

/**
 * Miller-Madow bias-corrected mutual information in bits per use:
 * each entropy in I = H(X) + H(Y) - H(X,Y) gets the (K - 1) / 2N
 * correction, which nets to
 *
 *   I_MM = I_plugin + (Kx + Ky - Kxy - 1) / (2 N ln 2)
 *
 * with K* the number of non-zero rows / columns / cells.  Clamped at
 * zero: the correction can overshoot on an independent channel, and a
 * negative leakage score is meaningless.
 */
double millerMadowMutualInformation(const ConfusionMatrix &m);

/** Outcome of the Blahut-Arimoto capacity iteration. */
struct CapacityResult
{
    double capacity_bits = 0.0; //!< lower bound I_L at termination
    double gap = 0.0;           //!< I_U - I_L at termination
    std::size_t iterations = 0;
    bool converged = false;     //!< gap fell below the tolerance
};

/**
 * Blahut-Arimoto channel capacity of the empirical conditional
 * distribution W(y|x) = n(x,y) / n(x), in bits per use.
 *
 * Inputs with no observations are excluded (their row of W is
 * unknown).  The iteration starts from the *empirical* input
 * distribution, and the reported lower bound I_L is monotone
 * non-decreasing from there — so the returned capacity is always >=
 * the plugin mutual information of the same matrix, by construction,
 * at any iteration count.
 */
CapacityResult blahutArimoto(const ConfusionMatrix &m,
                             double tolerance_bits = 1e-9,
                             std::size_t max_iterations = 2000);

/** Per-session leakage scores (one trial, one cell). */
struct Estimate
{
    std::uint64_t pairs = 0;            //!< aligned (x, y) observations
    double plugin_bits_per_use = 0.0;
    double corrected_bits_per_use = 0.0; //!< Miller-Madow, clamped >= 0
    double capacity_bits_per_use = 0.0;  //!< Blahut-Arimoto
    double bits_per_second = 0.0;        //!< corrected MI x symbol rate
};

/**
 * The per-session scorer: fixed alphabet sizes and Blahut-Arimoto
 * termination knobs, applied to one aligned trace at a time.
 */
class Estimator
{
  public:
    /** Defaults match the Session plumbing: {0,1} in, {0,1,erasure} out. */
    explicit Estimator(std::size_t inputs = 2, std::size_t outputs = 3,
                       double ba_tolerance_bits = 1e-9,
                       std::size_t ba_max_iterations = 2000)
        : inputs_(inputs), outputs_(outputs),
          ba_tolerance_(ba_tolerance_bits), ba_max_iter_(ba_max_iterations)
    {}

    /** Confusion matrix of one aligned trace. */
    ConfusionMatrix matrixFor(std::span<const std::uint8_t> sent,
                              std::span<const std::uint8_t> decoded) const;

    /**
     * Score a matrix.  @p symbol_rate_hz is channel uses per second
     * (for a bit-serial session: SessionResult::kbps x 1000, since one
     * use is one sent bit); pass 0 when timing is unavailable and
     * bits_per_second stays 0.
     */
    Estimate score(const ConfusionMatrix &m, double symbol_rate_hz) const;

    /** matrixFor + score in one step. */
    Estimate estimate(std::span<const std::uint8_t> sent,
                      std::span<const std::uint8_t> decoded,
                      double symbol_rate_hz) const;

    std::size_t inputs() const { return inputs_; }
    std::size_t outputs() const { return outputs_; }

  private:
    std::size_t inputs_;
    std::size_t outputs_;
    double ba_tolerance_;
    std::size_t ba_max_iter_;
};

} // namespace lruleak::leakage

#endif // LRULEAK_LEAKAGE_ESTIMATOR_HPP
