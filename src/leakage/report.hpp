/**
 * @file
 * Aggregating leakage scores across trials.
 *
 * One session gives one Estimate; an experiment cell runs many trials.
 * Report pools the trials' confusion matrices into a single matrix
 * (more samples, less estimator bias) and, separately, keeps the
 * per-trial scores so it can attach confidence intervals by resampling
 * trials with replacement (a percentile bootstrap over whole trials —
 * the trial, not the symbol, is the independent unit here, since the
 * symbols within one session share cache state).
 *
 * Deterministic like everything else in the subsystem: the bootstrap
 * stream is seeded explicitly and trials must be added in trial order,
 * which the experiments guarantee by post-processing core::runTrials
 * results sequentially.
 */

#ifndef LRULEAK_LEAKAGE_REPORT_HPP
#define LRULEAK_LEAKAGE_REPORT_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "leakage/estimator.hpp"

namespace lruleak::leakage {

/** A [lo, hi] percentile interval. */
struct Interval
{
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * 95% percentile-bootstrap interval of the mean of @p values:
 * @p resamples resampled means (drawn with replacement from a stream
 * seeded with @p seed), 2.5th to 97.5th percentile.  Degenerate inputs
 * (empty, single value) collapse to [v, v].
 */
Interval bootstrapMeanCi(std::span<const double> values,
                         std::size_t resamples, std::uint64_t seed);

/** Cross-trial summary of one experiment cell. */
struct Aggregate
{
    std::size_t trials = 0;
    std::uint64_t pairs = 0;      //!< pooled (x, y) observations

    /** Scores of the pooled confusion matrix. */
    Estimate pooled;

    /** Mean of the per-trial corrected MI (bits/use) and its 95% CI. */
    double mean_bits_per_use = 0.0;
    Interval bits_per_use_ci;

    /** Mean per-trial throughput (bits/second) and its 95% CI. */
    double mean_bits_per_second = 0.0;
    Interval bits_per_second_ci;
};

/**
 * Per-cell score aggregator.  Feed it one aligned trace per trial;
 * read the Aggregate when the cell is done.
 */
class Report
{
  public:
    struct Config
    {
        Estimator estimator{};
        std::size_t resamples = 200;  //!< bootstrap resample count
        std::uint64_t seed = 7;       //!< bootstrap stream seed
    };

    Report();
    explicit Report(Config config);

    /**
     * Add one trial's aligned trace.  @p symbol_rate_hz is the trial's
     * channel uses per second (SessionResult::kbps x 1000).
     */
    void addTrial(std::span<const std::uint8_t> sent,
                  std::span<const std::uint8_t> decoded,
                  double symbol_rate_hz);

    /** Add a pre-built per-trial matrix (non-Session front ends). */
    void addTrial(const ConfusionMatrix &matrix, double symbol_rate_hz);

    std::size_t trials() const { return trial_bits_per_use_.size(); }

    Aggregate aggregate() const;

  private:
    Config config_;
    ConfusionMatrix pooled_;
    double rate_sum_ = 0.0; //!< mean symbol rate feeds the pooled bits/s
    std::vector<double> trial_bits_per_use_;
    std::vector<double> trial_bits_per_second_;
};

} // namespace lruleak::leakage

#endif // LRULEAK_LEAKAGE_REPORT_HPP
