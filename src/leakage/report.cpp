/**
 * @file
 * Trial aggregation and bootstrap confidence intervals.
 */

#include "leakage/report.hpp"

#include <algorithm>
#include <cmath>

#include "sim/random.hpp"

namespace lruleak::leakage {

Interval
bootstrapMeanCi(std::span<const double> values, std::size_t resamples,
                std::uint64_t seed)
{
    if (values.empty())
        return Interval{};
    if (values.size() == 1 || resamples == 0)
        return Interval{values[0], values[0]};

    sim::Xoshiro256 rng(seed);
    std::vector<double> means;
    means.reserve(resamples);
    for (std::size_t r = 0; r < resamples; ++r) {
        double sum = 0.0;
        for (std::size_t i = 0; i < values.size(); ++i)
            sum += values[rng.below(values.size())];
        means.push_back(sum / static_cast<double>(values.size()));
    }
    std::sort(means.begin(), means.end());

    const auto at = [&](double pct) {
        const double pos = pct * static_cast<double>(means.size() - 1);
        return means[static_cast<std::size_t>(std::llround(pos))];
    };
    return Interval{at(0.025), at(0.975)};
}

Report::Report()
    : Report(Config{})
{}

Report::Report(Config config)
    : config_(config),
      pooled_(config.estimator.inputs(), config.estimator.outputs())
{}

void
Report::addTrial(std::span<const std::uint8_t> sent,
                 std::span<const std::uint8_t> decoded,
                 double symbol_rate_hz)
{
    addTrial(config_.estimator.matrixFor(sent, decoded), symbol_rate_hz);
}

void
Report::addTrial(const ConfusionMatrix &matrix, double symbol_rate_hz)
{
    pooled_.merge(matrix);
    rate_sum_ += symbol_rate_hz;

    const Estimate e = config_.estimator.score(matrix, symbol_rate_hz);
    trial_bits_per_use_.push_back(e.corrected_bits_per_use);
    trial_bits_per_second_.push_back(e.bits_per_second);
}

Aggregate
Report::aggregate() const
{
    Aggregate agg;
    agg.trials = trials();
    agg.pairs = pooled_.total();
    if (agg.trials == 0)
        return agg;

    // The pooled matrix is scored at the mean symbol rate: pooling
    // concatenates the trials' uses, so the cell-level bits/s is the
    // pooled per-use leakage at the average pace of one trial.
    const double mean_rate = rate_sum_ / static_cast<double>(agg.trials);
    agg.pooled = config_.estimator.score(pooled_, mean_rate);

    const auto mean = [](const std::vector<double> &v) {
        double sum = 0.0;
        for (double x : v)
            sum += x;
        return sum / static_cast<double>(v.size());
    };
    agg.mean_bits_per_use = mean(trial_bits_per_use_);
    agg.mean_bits_per_second = mean(trial_bits_per_second_);
    agg.bits_per_use_ci = bootstrapMeanCi(
        trial_bits_per_use_, config_.resamples, config_.seed);
    agg.bits_per_second_ci = bootstrapMeanCi(
        trial_bits_per_second_, config_.resamples, config_.seed ^ 0xb5ULL);
    return agg;
}

} // namespace lruleak::leakage
