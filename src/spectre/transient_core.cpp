/**
 * @file
 * Transient core implementation.
 */

#include "spectre/transient_core.hpp"

namespace lruleak::spectre {

VictimCallResult
TransientCore::callVictim(const SpectreVictim &victim, std::uint64_t x,
                          GadgetPart part)
{
    VictimCallResult res;
    res.architectural = x < SpectreVictim::kArray1Size;
    res.predicted_taken = predictor_.predict(SpectreVictim::kBoundsCheckPc);

    // The gadget executes when the predictor steers into it, whether or
    // not the bounds check will eventually pass.
    if (res.predicted_taken || res.architectural) {
        const bool transient = !res.architectural;
        std::uint64_t t = 0;

        // Load 1: array1[x].
        const sim::Addr a1 = SpectreVictim::kArray1 + x;
        const sim::MemRef ref1{a1, a1, kVictimThread, false};
        const std::uint64_t lat1 =
            uarch_.latency(hierarchy_.peekLevel(ref1)) + config_.issue_cost;
        if (!transient || t + lat1 <= config_.window) {
            hierarchy_.access(ref1);
            res.load1_landed = true;
            t += lat1;

            // Load 2: array2[transform(array1[x]) * 64] — the encode.
            res.loaded_byte = victim.readByte(a1);
            res.encoded_index =
                SpectreVictim::gadgetIndex(res.loaded_byte, part);
            const sim::Addr a2 =
                SpectreVictim::array2Line(res.encoded_index);
            const sim::MemRef ref2{a2, a2, kVictimThread, false};
            const std::uint64_t lat2 =
                uarch_.latency(hierarchy_.peekLevel(ref2)) +
                config_.issue_cost;
            if (!transient || t + lat2 <= config_.window) {
                hierarchy_.access(ref2);
                res.load2_landed = true;
            }
        }
    }

    predictor_.update(SpectreVictim::kBoundsCheckPc, res.architectural);
    return res;
}

} // namespace lruleak::spectre
