/**
 * @file
 * The Spectre-v1 victim (paper Section VIII): the classic bounds-checked
 * gadget from Kocher et al.'s sample code,
 *
 *     if (x < array1_size)
 *         y = array2[array1[x] * 64];
 *
 * The victim owns a small flat memory: array1 (16 in-bounds entries) and,
 * at a known offset past it, the secret string.  A malicious x reaches
 * the secret; the transient load of array2[secret * 64] imprints the
 * secret on the cache set (secret mod 64) that the disclosure primitive
 * then reads out.
 *
 * An L1 set encodes at most 6 bits per access, so full bytes are
 * recovered with a two-part gadget (low 6 bits, then high 2 bits); this
 * matches the paper's use of 63 sets as the symbol alphabet.
 */

#ifndef LRULEAK_SPECTRE_VICTIM_HPP
#define LRULEAK_SPECTRE_VICTIM_HPP

#include <cstdint>
#include <string>

#include "sim/address.hpp"

namespace lruleak::spectre {

/** Which part of the loaded byte the gadget encodes. */
enum class GadgetPart
{
    LowSixBits,  //!< idx = byte & 0x3f
    HighTwoBits, //!< idx = byte >> 6
};

/**
 * Victim address space and data.  Purely architectural: the cache side
 * effects happen in TransientCore.
 */
class SpectreVictim
{
  public:
    explicit SpectreVictim(std::string secret)
        : secret_(std::move(secret))
    {}

    // ---- Address map (all line-aligned; same address space as the
    //      attacker in the classic in-process Spectre v1 setting).

    /** Base of array1 (16 byte-entries). */
    static constexpr sim::Addr kArray1 = 0x5000'0000'0000ULL;
    /** In-bounds length of array1. */
    static constexpr std::uint64_t kArray1Size = 16;
    /** The secret lives at this offset past array1. */
    static constexpr std::uint64_t kSecretOffset = 4096;
    /**
     * Base of array2 (the probe array).  Offset by one line so symbol v
     * maps to L1 set (v + 1) mod 64, keeping set 0 free for the
     * attacker's pointer-chase chain.
     */
    static constexpr sim::Addr kArray2 = 0x5100'0000'0040ULL;
    /** Branch identity of the bounds check. */
    static constexpr std::uint64_t kBoundsCheckPc = 0x401337;

    /** Malicious input that makes array1[x] read secret byte @p k. */
    static constexpr std::uint64_t
    maliciousX(std::size_t k)
    {
        return kSecretOffset + k;
    }

    /** Architectural load of the victim's byte memory. */
    std::uint8_t
    readByte(sim::Addr addr) const
    {
        if (addr >= kArray1 && addr < kArray1 + kArray1Size)
            return static_cast<std::uint8_t>(addr - kArray1);
        const sim::Addr secret_base = kArray1 + kSecretOffset;
        if (addr >= secret_base && addr < secret_base + secret_.size())
            return static_cast<std::uint8_t>(
                secret_[static_cast<std::size_t>(addr - secret_base)]);
        return 0;
    }

    /** The probe-array line for symbol @p idx. */
    static constexpr sim::Addr
    array2Line(std::uint8_t idx)
    {
        return kArray2 + static_cast<sim::Addr>(idx) * 64;
    }

    /** Gadget index transform for the selected part. */
    static constexpr std::uint8_t
    gadgetIndex(std::uint8_t byte, GadgetPart part)
    {
        return part == GadgetPart::LowSixBits
                   ? static_cast<std::uint8_t>(byte & 0x3f)
                   : static_cast<std::uint8_t>(byte >> 6);
    }

    const std::string &secret() const { return secret_; }
    std::size_t secretLength() const { return secret_.size(); }

  private:
    std::string secret_;
};

} // namespace lruleak::spectre

#endif // LRULEAK_SPECTRE_VICTIM_HPP
