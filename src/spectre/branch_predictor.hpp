/**
 * @file
 * Minimal branch predictor for the Spectre-v1 model: a table of 2-bit
 * saturating counters indexed by branch identity.  The attacker trains
 * the victim's bounds check to "taken" with in-bounds calls, then a
 * single out-of-bounds call mispredicts into the gadget.
 */

#ifndef LRULEAK_SPECTRE_BRANCH_PREDICTOR_HPP
#define LRULEAK_SPECTRE_BRANCH_PREDICTOR_HPP

#include <cstdint>
#include <map>

namespace lruleak::spectre {

/** 2-bit saturating counter predictor. */
class BranchPredictor
{
  public:
    /** Predict the branch at @p pc: true = taken (bounds check passes). */
    bool
    predict(std::uint64_t pc) const
    {
        auto it = counters_.find(pc);
        return it == counters_.end() ? false : it->second >= 2;
    }

    /** Record the architectural outcome. */
    void
    update(std::uint64_t pc, bool taken)
    {
        std::uint8_t &c = counters_[pc];
        if (taken) {
            if (c < 3)
                ++c;
        } else if (c > 0) {
            --c;
        }
    }

    void reset() { counters_.clear(); }

  private:
    std::map<std::uint64_t, std::uint8_t> counters_;
};

} // namespace lruleak::spectre

#endif // LRULEAK_SPECTRE_BRANCH_PREDICTOR_HPP
