/**
 * @file
 * Transient execution model for Spectre v1.
 *
 * One call executes the victim function once.  If the predictor says
 * "in bounds" for an out-of-bounds x, the gadget's two loads execute
 * transiently: each load's cache fill lands only if the load completes
 * within the speculation window (squash cancels still-in-flight fills —
 * the conservative design; see DESIGN.md).  Architectural results of
 * transient execution are always discarded, but the cache and LRU state
 * changes of completed loads persist — that is the covert channel.
 *
 * This models the paper's key comparison: the LRU channel's encode is an
 * L1 hit (a few cycles), so the attack works with a much smaller
 * speculation window than Flush+Reload's memory-miss encode.
 */

#ifndef LRULEAK_SPECTRE_TRANSIENT_CORE_HPP
#define LRULEAK_SPECTRE_TRANSIENT_CORE_HPP

#include <cstdint>

#include "sim/hierarchy.hpp"
#include "spectre/branch_predictor.hpp"
#include "spectre/victim.hpp"
#include "timing/uarch.hpp"

namespace lruleak::spectre {

/** Thread ids in the shared (single-process) Spectre setting. */
constexpr sim::ThreadId kVictimThread = 0;
constexpr sim::ThreadId kAttackerThread = 1;

/** Outcome of a single victim invocation (for tests and diagnostics). */
struct VictimCallResult
{
    bool predicted_taken = false;
    bool architectural = false;  //!< bounds check actually passed
    bool load1_landed = false;   //!< array1[x] fill committed
    bool load2_landed = false;   //!< array2[...] encode fill committed
    std::uint8_t loaded_byte = 0;
    std::uint8_t encoded_index = 0;
};

/** Speculation knobs. */
struct SpeculationConfig
{
    /**
     * Cycles between the mispredicted branch's dispatch and its
     * resolution (the window transient loads can complete in).  The
     * default is wide enough for every disclosure primitive, including
     * Flush+Reload's memory-miss encode; the window ablation bench
     * shrinks it to find each primitive's minimum.
     */
    std::uint64_t window = 700;
    /** Per-load issue overhead inside the window. */
    std::uint32_t issue_cost = 2;
};

/**
 * Executes victim calls against the shared hierarchy.
 */
class TransientCore
{
  public:
    TransientCore(sim::CacheHierarchy &hierarchy, const timing::Uarch &uarch,
                  SpeculationConfig config = {})
        : hierarchy_(hierarchy), uarch_(uarch), config_(config)
    {}

    /**
     * Execute `victim_function(x)` with the selected gadget part.
     * Cache side effects happen as described above; the return value
     * reports what landed (used by unit tests, invisible to attackers).
     */
    VictimCallResult callVictim(const SpectreVictim &victim,
                                std::uint64_t x, GadgetPart part);

    BranchPredictor &predictor() { return predictor_; }
    const SpeculationConfig &config() const { return config_; }
    void setWindow(std::uint64_t window) { config_.window = window; }

  private:
    sim::CacheHierarchy &hierarchy_;
    timing::Uarch uarch_;
    SpeculationConfig config_;
    BranchPredictor predictor_;
};

} // namespace lruleak::spectre

#endif // LRULEAK_SPECTRE_TRANSIENT_CORE_HPP
