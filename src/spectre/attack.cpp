/**
 * @file
 * Spectre attack implementation.
 */

#include "spectre/attack.hpp"

#include <algorithm>
#include <array>

#include "channel/layout.hpp"
#include "sim/access_port.hpp"
#include "sim/cache_config.hpp"

namespace lruleak::spectre {

namespace {

/** Attacker-owned line i (1-based tags) of a given L1 set. */
sim::MemRef
attackerLine(const sim::AddressLayout &layout, std::uint32_t set,
             std::uint32_t i)
{
    const sim::Addr a = sim::lineInSet(layout, set, i,
                                       channel::ChannelLayout::kReceiverBase);
    return sim::MemRef{a, a, kAttackerThread, false};
}

/** The shared array2 probe line of symbol v. */
sim::MemRef
symbolLine(std::uint8_t v)
{
    const sim::Addr a = SpectreVictim::array2Line(v);
    return sim::MemRef{a, a, kAttackerThread, false};
}

/** L1 set that symbol v's array2 line maps to. */
std::uint32_t
symbolSet(const sim::AddressLayout &layout, std::uint8_t v)
{
    return layout.setIndex(SpectreVictim::array2Line(v));
}

/** Per-attack working state. */
class AttackContext
{
  public:
    explicit AttackContext(const SpectreAttackConfig &config)
        : config_(config), rng_(config.seed),
          hierarchy_(makeHierarchy(config)), port_(hierarchy_),
          core_(hierarchy_, config.uarch, config.spec),
          model_(config.uarch),
          layout_(sim::CacheConfig::intelL1d().line_size,
                  sim::CacheConfig::intelL1d().numSets())
    {
        // The chase chain lives in set 0 (symbol lines start at set 1).
        for (std::uint32_t i = 0; i < 7; ++i) {
            const sim::Addr a = sim::lineInSet(
                layout_, /*set=*/0, i, channel::ChannelLayout::kChaseBase);
            chase_.push_back(sim::MemRef{a, a, kAttackerThread, false});
        }
    }

    static sim::HierarchyConfig
    makeHierarchy(const SpectreAttackConfig &config)
    {
        sim::HierarchyConfig h;
        h.l1_way_predictor = config.uarch.way_predictor;
        h.enable_prefetcher = config.enable_prefetcher;
        return h;
    }

    /** Timed load of @p ref through the pointer-chase primitive.  The
     *  attacker's own traffic goes through the hierarchy-agnostic
     *  AccessPort (core 0), so the disclosure walks are ready to run
     *  over other topologies. */
    std::uint32_t
    measure(const sim::MemRef &ref)
    {
        port_.accessBatch(0, chase_);
        const auto level = port_.access(0, ref).level;
        return model_.chase(
            std::vector<sim::HitLevel>(chase_.size(), sim::HitLevel::L1),
            level, rng_);
    }

    /** Candidate symbols in scan order (fresh shuffle per round). */
    std::vector<std::uint8_t>
    symbolOrder(std::uint32_t nsymbols)
    {
        std::vector<std::uint8_t> order;
        for (std::uint32_t v = 0; v < nsymbols; ++v) {
            // Symbols aliasing the chase set (set 0) are unusable.
            if (symbolSet(layout_, static_cast<std::uint8_t>(v)) != 0)
                order.push_back(static_cast<std::uint8_t>(v));
        }
        if (config_.random_probe_order) {
            for (std::size_t i = order.size(); i > 1; --i)
                std::swap(order[i - 1], order[rng_.below(i)]);
        }
        return order;
    }

    void
    train(const SpectreVictim &victim, GadgetPart part)
    {
        for (std::uint32_t t = 0; t < config_.train_calls; ++t) {
            core_.callVictim(victim, /*x=*/0, part);
            ++victim_calls_;
        }
    }

    /** One scored round; adds hits into @p scores (indexed by symbol). */
    void
    round(const SpectreVictim &victim, std::size_t byte_index,
          GadgetPart part, std::vector<std::uint32_t> &scores)
    {
        const auto order = symbolOrder(
            part == GadgetPart::LowSixBits ? 64 : 4);
        const std::uint32_t n = layout_.numSets() > 0 ? layout_.numSets()
                                                      : 64;
        (void)n;

        train(victim, part);

        // The victim uses its secret in its normal (architectural)
        // operation, so the secret line is warm when the transient load
        // dereferences it — as in the Spectre v1 sample code.
        const sim::Addr s = SpectreVictim::kArray1 +
            SpectreVictim::kSecretOffset + byte_index;
        port_.access(0, sim::MemRef{s, s, kVictimThread, false});

        // ---- Initialization phase over every probed set.
        for (std::uint8_t v : order)
            initSet(v);

        // ---- One transient victim call: the encode.
        core_.callVictim(victim, SpectreVictim::maliciousX(byte_index),
                         part);
        ++victim_calls_;

        // ---- Decode phase per set.
        for (std::uint8_t v : order) {
            if (decodeSet(v))
                ++scores[v];
        }
    }

    std::uint64_t victimCalls() const { return victim_calls_; }
    sim::CacheHierarchy &hierarchy() { return hierarchy_; }
    const timing::MeasurementModel &model() const { return model_; }

  private:
    void
    initSet(std::uint8_t v)
    {
        const std::uint32_t set = symbolSet(layout_, v);
        // The init walks are straight-line access sequences: build the
        // whole walk and replay it through the hierarchy batch API.
        batch_.clear();
        switch (config_.disclosure) {
          case Disclosure::FlushReloadMem:
            port_.flush(symbolLine(v));
            return;
          case Disclosure::FlushReloadL1:
            // Evict the symbol line from L1 with 8 attacker lines.
            for (std::uint32_t i = 1; i <= layout_ways(); ++i)
                batch_.push_back(attackerLine(layout_, set, i));
            break;
          case Disclosure::LruAlg1:
            // Algorithm 1 init: line 0 (shared array2 line) then the
            // attacker's lines 1..d-1.
            for (std::uint32_t i = 0; i < config_.d; ++i) {
                if (i == 0)
                    batch_.push_back(symbolLine(v));
                else
                    batch_.push_back(attackerLine(layout_, set, i));
            }
            break;
          case Disclosure::LruAlg2:
            // Algorithm 2 assumes the sender's line is cached before the
            // init phase ("line 8 (hit, if line 8 is in cache...)"), so
            // the transient encode is a hit — warm it, then init with
            // the attacker's lines 0..d-1 (tags 1..d).
            batch_.push_back(symbolLine(v));
            for (std::uint32_t i = 0; i < config_.d; ++i)
                batch_.push_back(attackerLine(layout_, set, i + 1));
            break;
        }
        port_.accessBatch(0, batch_);
    }

    /** @return true when the set shows "the victim touched this set". */
    bool
    decodeSet(std::uint8_t v)
    {
        const std::uint32_t set = symbolSet(layout_, v);
        switch (config_.disclosure) {
          case Disclosure::FlushReloadMem: {
            const std::uint32_t lat = measure(symbolLine(v));
            return lat <= frThreshold();
          }
          case Disclosure::FlushReloadL1: {
            const std::uint32_t lat = measure(symbolLine(v));
            return lat <= model_.chaseThreshold();
          }
          case Disclosure::LruAlg1: {
            // Decode: attacker lines d..N, then time line 0.
            batch_.clear();
            for (std::uint32_t i = config_.d; i <= layout_ways(); ++i)
                batch_.push_back(attackerLine(layout_, set, i));
            port_.accessBatch(0, batch_);
            const std::uint32_t lat = measure(symbolLine(v));
            return lat <= model_.chaseThreshold(); // hit => touched
          }
          case Disclosure::LruAlg2: {
            batch_.clear();
            for (std::uint32_t i = config_.d; i < layout_ways(); ++i)
                batch_.push_back(attackerLine(layout_, set, i + 1));
            port_.accessBatch(0, batch_);
            const std::uint32_t lat =
                measure(attackerLine(layout_, set, 1));
            return lat > model_.chaseThreshold(); // miss => touched
          }
        }
        return false;
    }

    /** Reload threshold for F+R(mem): separates cached from memory. */
    std::uint32_t
    frThreshold() const
    {
        const auto &u = config_.uarch;
        return u.chase_overhead + 7 * u.l1_latency +
               (u.llc_latency + u.mem_latency) / 2;
    }

    std::uint32_t
    layout_ways() const
    {
        return sim::CacheConfig::intelL1d().ways;
    }

    SpectreAttackConfig config_;
    sim::Xoshiro256 rng_;
    sim::CacheHierarchy hierarchy_;
    sim::SingleCorePort port_; //!< hierarchy-agnostic view of hierarchy_
    TransientCore core_;
    timing::MeasurementModel model_;
    sim::AddressLayout layout_;
    std::vector<sim::MemRef> chase_;
    std::vector<sim::MemRef> batch_; //!< reused init/decode walk buffer
    std::uint64_t victim_calls_ = 0;
};

/** argmax over scores; ties resolve to the lowest symbol. */
std::uint8_t
bestSymbol(const std::vector<std::uint32_t> &scores)
{
    std::uint8_t best = 0;
    std::uint32_t best_score = 0;
    for (std::size_t v = 0; v < scores.size(); ++v) {
        if (scores[v] > best_score) {
            best_score = scores[v];
            best = static_cast<std::uint8_t>(v);
        }
    }
    return best;
}

} // namespace

std::string
disclosureName(Disclosure d)
{
    switch (d) {
      case Disclosure::FlushReloadMem: return "F+R (mem)";
      case Disclosure::FlushReloadL1:  return "F+R (L1)";
      case Disclosure::LruAlg1:        return "L1 LRU Alg.1";
      case Disclosure::LruAlg2:        return "L1 LRU Alg.2";
    }
    return "unknown";
}

SpectreAttackResult
runSpectreAttack(const SpectreAttackConfig &config, const std::string &secret)
{
    SpectreVictim victim(secret);
    AttackContext ctx(config);

    std::string recovered;
    recovered.reserve(secret.size());

    for (std::size_t k = 0; k < secret.size(); ++k) {
        std::vector<std::uint32_t> low_scores(64, 0);
        std::vector<std::uint32_t> high_scores(4, 0);
        for (std::uint32_t r = 0; r < config.rounds; ++r) {
            ctx.round(victim, k, GadgetPart::LowSixBits, low_scores);
            ctx.round(victim, k, GadgetPart::HighTwoBits, high_scores);
        }
        const std::uint8_t low = bestSymbol(low_scores);
        const std::uint8_t high = bestSymbol(high_scores);
        recovered.push_back(static_cast<char>((high << 6) | low));
    }

    SpectreAttackResult res;
    res.secret = secret;
    res.recovered = recovered;
    res.victim_calls = ctx.victimCalls();

    std::size_t correct = 0;
    for (std::size_t k = 0; k < secret.size(); ++k)
        correct += secret[k] == recovered[k] ? 1 : 0;
    res.byte_accuracy = secret.empty()
        ? 1.0
        : static_cast<double>(correct) / static_cast<double>(secret.size());

    const auto &h = ctx.hierarchy();
    res.l1 = h.l1().counters().total();
    res.l2 = h.l2().counters().total();
    res.llc = h.llc().counters().total();
    return res;
}

std::uint64_t
minimumWorkingWindow(SpectreAttackConfig config, std::uint64_t lo,
                     std::uint64_t hi)
{
    // Binary search the smallest window that still recovers "K".
    const std::string probe_secret = "K";
    auto works = [&](std::uint64_t window) {
        config.spec.window = window;
        const auto res = runSpectreAttack(config, probe_secret);
        return res.byte_accuracy == 1.0;
    };
    if (!works(hi))
        return 0; // never works in range
    while (lo < hi) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        if (works(mid))
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

} // namespace lruleak::spectre
