/**
 * @file
 * Full Spectre-v1 attack orchestration (paper Section VIII, Table VII).
 *
 * The attacker recovers the victim's secret byte by byte.  Per byte and
 * per gadget part (low 6 bits, high 2 bits), each round:
 *
 *   1. train the bounds-check predictor with in-bounds calls;
 *   2. initialise the disclosure primitive over all 63 usable sets
 *      (LRU Algorithm 1/2 init phases, or flush/evict for Flush+Reload);
 *   3. one out-of-bounds victim call — the transient gadget touches the
 *      array2 line of the secret symbol;
 *   4. decode: walk the sets (in random order when the prefetcher
 *      mitigation of Appendix C is on) and time each set's line 0.
 *
 * Scores accumulate across rounds; argmax per part reconstructs the
 * byte.
 */

#ifndef LRULEAK_SPECTRE_ATTACK_HPP
#define LRULEAK_SPECTRE_ATTACK_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "sim/hierarchy.hpp"
#include "sim/random.hpp"
#include "spectre/transient_core.hpp"
#include "spectre/victim.hpp"
#include "timing/pointer_chase.hpp"
#include "timing/uarch.hpp"

namespace lruleak::spectre {

/** Which covert channel carries the secret out of transient execution. */
enum class Disclosure
{
    FlushReloadMem, //!< clflush + reload (the classic PoC channel)
    FlushReloadL1,  //!< evict-to-L2 + reload
    LruAlg1,        //!< LRU channel, shared array2 line (Algorithm 1)
    LruAlg2,        //!< LRU channel, attacker-only lines (Algorithm 2)
};

std::string disclosureName(Disclosure d);

/** Attack knobs. */
struct SpectreAttackConfig
{
    timing::Uarch uarch = timing::Uarch::intelXeonE52690();
    Disclosure disclosure = Disclosure::LruAlg1;
    std::uint32_t rounds = 3;       //!< scoring rounds per byte
    std::uint32_t train_calls = 6;  //!< predictor training per round
    std::uint32_t d = 8;            //!< LRU receiver init parameter
    SpeculationConfig spec{};       //!< speculation window model
    bool enable_prefetcher = false; //!< Appendix C noise source
    bool random_probe_order = true; //!< Appendix C mitigation
    std::uint64_t seed = 7;
};

/** Attack outcome plus the Table VII counters. */
struct SpectreAttackResult
{
    std::string secret;
    std::string recovered;
    double byte_accuracy = 0.0;   //!< fraction of bytes exactly right
    std::uint64_t victim_calls = 0;

    // Combined victim+attacker cache behaviour (Table VII).
    sim::LevelStats l1;
    sim::LevelStats l2;
    sim::LevelStats llc;
};

/**
 * Run the complete attack against @p secret.
 *
 * Characters whose low six bits equal 63 alias the attacker's chase set
 * and are skipped by the symbol scan (the paper likewise uses only 63 of
 * the 64 sets); avoid them in test secrets.
 */
SpectreAttackResult runSpectreAttack(const SpectreAttackConfig &config,
                                     const std::string &secret);

/**
 * The minimum speculation window (in cycles) at which the given
 * disclosure primitive still recovers a one-character secret.  Used by
 * the speculation-window ablation bench to show the paper's claim that
 * LRU disclosure needs a much smaller window than Flush+Reload.
 */
std::uint64_t minimumWorkingWindow(SpectreAttackConfig config,
                                   std::uint64_t lo = 4,
                                   std::uint64_t hi = 1024);

} // namespace lruleak::spectre

#endif // LRULEAK_SPECTRE_ATTACK_HPP
