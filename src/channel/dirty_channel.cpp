/**
 * @file
 * Dirty-state receiver implementations.
 */

#include "channel/dirty_channel.hpp"

#include <algorithm>

namespace lruleak::channel {

// --------------------------------------------------------- dirty-evict

DirtyEvictReceiver::DirtyEvictReceiver(const ChannelLayout &layout,
                                       DirtyEvictReceiverConfig config)
    : layout_(layout), config_(config),
      readout_(layout.chaseRefs(1).front())
{
    // N+1 own lines for the N-way target set: the paper's Table I
    // eviction sequence.  A plain N-line prime (Prime+Probe's walk)
    // cannot carry this channel — under any recency policy the refill
    // victim is one of our own stale lines, never the sender's line,
    // which stays resident and dirty forever.
    for (std::uint32_t i = 0; i <= layout_.ways(); ++i)
        lines_.push_back(layout_.receiverLine(LruAlgorithm::Alg2Disjoint, i));
    samples_.reserve(config_.max_samples);
}

exec::Op
DirtyEvictReceiver::next(std::uint64_t now)
{
    switch (phase_) {
      case Phase::Sleep: {
        phase_ = Phase::Walk;
        const std::uint64_t deadline = mark_ + config_.tr;
        mark_ = std::max(deadline, now);
        if (deadline > now)
            return exec::Op::spinUntil(deadline);
        [[fallthrough]];
      }

      case Phase::Walk:
        // Fixed sequential order 0..N: Table I shows this is what makes
        // the untouched (sender's) line the Tree-PLRU victim.
        if (index_ < lines_.size())
            return exec::Op::access(lines_[index_++]);
        index_ = 0;
        phase_ = Phase::Refetch;
        [[fallthrough]];

      case Phase::Refetch:
        phase_ = Phase::Measure;
        return exec::Op::access(readout_);

      case Phase::Measure:
        phase_ = Phase::Sleep;
        // Every write-back since the previous sample stalled this
        // iteration's walk; fold them all into the timed L1 hit (the
        // engine adds the timed access's own write-backs on top).
        return exec::Op::measure(readout_, {}, pending_writebacks_);

      case Phase::Finished:
        break;
    }
    return exec::Op::done();
}

void
DirtyEvictReceiver::onResult(const exec::OpResult &result)
{
    if (result.kind == exec::OpKind::Access) {
        pending_writebacks_ += result.writebacks;
        return;
    }
    if (result.kind != exec::OpKind::Measure)
        return;
    pending_writebacks_ = 0;
    samples_.push_back(Sample{result.tsc, result.measured, result.level});
    if (samples_.size() >= config_.max_samples)
        phase_ = Phase::Finished;
}

// --------------------------------------------------------- flush-dirty

FlushDirtyReceiver::FlushDirtyReceiver(const ChannelLayout &layout,
                                       FlushDirtyReceiverConfig config)
    : layout_(layout), config_(config),
      line_(layout.sharedLine(kReceiverThread))
{
    samples_.reserve(config_.max_samples);
}

exec::Op
FlushDirtyReceiver::next(std::uint64_t now)
{
    switch (phase_) {
      case Phase::Sleep: {
        phase_ = Phase::Measure;
        const std::uint64_t deadline = mark_ + config_.tr;
        mark_ = std::max(deadline, now);
        if (deadline > now)
            return exec::Op::spinUntil(deadline);
        [[fallthrough]];
      }

      case Phase::Measure:
        phase_ = Phase::Sleep;
        return exec::Op::measureFlush(line_);

      case Phase::Finished:
        break;
    }
    return exec::Op::done();
}

void
FlushDirtyReceiver::onResult(const exec::OpResult &result)
{
    if (result.kind != exec::OpKind::MeasureFlush)
        return;
    samples_.push_back(Sample{result.tsc, result.measured, result.level});
    if (samples_.size() >= config_.max_samples)
        phase_ = Phase::Finished;
}

} // namespace lruleak::channel
