/**
 * @file
 * Prime+Probe baseline channel (paper Section II-A, Osvik et al.).
 *
 * The receiver occupies the whole target set with N of its own lines
 * (prime), sleeps, then re-walks all N lines as a dependency chain and
 * times the walk (probe).  A sender access to the set evicts one of the
 * primed lines, which shows up as extra latency in the probe.  No shared
 * memory is needed — the sender is the LRU channel's Algorithm 2 sender.
 */

#ifndef LRULEAK_CHANNEL_PRIME_PROBE_HPP
#define LRULEAK_CHANNEL_PRIME_PROBE_HPP

#include <cstdint>
#include <vector>

#include "channel/layout.hpp"
#include "channel/lru_channel.hpp"
#include "exec/op.hpp"
#include "timing/uarch.hpp"

namespace lruleak::channel {

/** Prime+Probe receiver knobs. */
struct PpReceiverConfig
{
    std::uint64_t tr = 600;
    std::uint64_t max_samples = 1000;
};

/**
 * The Prime+Probe receiver.  Each Sample's latency is the timed N-access
 * probe chain; the hit/miss threshold is N L1 hits plus half an L2 delta
 * (see probeThreshold).
 */
class PpReceiver : public exec::ThreadProgram
{
  public:
    PpReceiver(const ChannelLayout &layout, PpReceiverConfig config);

    exec::Op next(std::uint64_t now) override;
    void onResult(const exec::OpResult &result) override;

    const std::vector<Sample> &samples() const { return samples_; }

    /** Probe-latency threshold separating "all hits" from ">=1 miss". */
    static std::uint32_t probeThreshold(const timing::Uarch &uarch,
                                        std::uint32_t ways);

  private:
    enum class Phase
    {
        Prime,
        Sleep,
        Probe,   //!< N-1 chained accesses, levels collected
        Measure, //!< final chained access, timed
        Finished,
    };

    ChannelLayout layout_;
    PpReceiverConfig config_;
    std::vector<sim::MemRef> lines_;
    std::vector<Sample> samples_;
    std::vector<sim::HitLevel> probe_levels_;

    Phase phase_ = Phase::Prime;
    std::uint32_t index_ = 0;
    std::uint64_t mark_ = 0;
};

} // namespace lruleak::channel

#endif // LRULEAK_CHANNEL_PRIME_PROBE_HPP
