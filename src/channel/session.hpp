/**
 * @file
 * The unified transmission pipeline: ONE path from a channel-session
 * configuration to a decoded, scored transmission, for any channel
 * design on any topology under any arbitration policy.
 *
 * Before this module the repo carried three parallel end-to-end
 * harnesses — a single-core covert runner (LRU algorithms only), a
 * cross-core runner (Algorithm 2 only) and the ad-hoc ChannelPair
 * loops in core/experiments.cpp — each re-implementing hierarchy
 * construction, engine wiring, calibration, decode and error scoring.
 * Session factors the pipeline once:
 *
 *   SessionConfig
 *     -> build the topology (CacheHierarchy or MultiCoreHierarchy
 *        behind a sim::AccessPort)
 *     -> build the carrier-geometry ChannelLayout (L1 or shared LLC)
 *     -> instantiate sender/receiver via the channel factory
 *        (any of the six ChannelIds)
 *     -> run under the sharing mode's ArbitrationPolicy (RoundRobinSmt,
 *        TimeSlice or LowestClock with nested per-core children)
 *     -> calibrate the decode threshold (channel::Calibration)
 *     -> window-decode and score
 *   -> SessionResult
 *
 * The legacy entry points are gone; every experiment, bench lane and
 * example calls Session directly.  The pre-Session harness bodies and
 * their config translations live on in tests/legacy_channel_runners.hpp
 * as the oracle for tests/test_session_differential.cpp.
 */

#ifndef LRULEAK_CHANNEL_SESSION_HPP
#define LRULEAK_CHANNEL_SESSION_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "channel/calibration.hpp"
#include "channel/channel_factory.hpp"
#include "channel/decoder.hpp"
#include "channel/edit_distance.hpp"
#include "exec/engine.hpp"
#include "sim/multicore_hierarchy.hpp"
#include "sim/plcache.hpp"
#include "timing/uarch.hpp"
#include "workload/trace_file.hpp"

namespace lruleak::channel {

/** How sender and receiver share hardware. */
enum class SharingMode
{
    HyperThreaded, //!< SMT siblings on one core (Section V-A)
    TimeSliced,    //!< one context, OS scheduling (Section V-B)
    CrossCore,     //!< different cores, shared inclusive LLC (x-core)
};

/** Stable CLI token: "hyperthreaded", "timesliced", "crosscore". */
std::string_view sharingModeToken(SharingMode mode);

/** Parse a sharing-mode name (token, aliases like "smt"/"ht"/"xcore"). */
SharingMode sharingModeFromName(std::string_view name);

/** All modes, in declaration order. */
const std::vector<SharingMode> &allSharingModes();

/** Full configuration of one channel session. */
struct SessionConfig
{
    ChannelId channel = ChannelId::LruAlg1;
    SharingMode mode = SharingMode::HyperThreaded;
    timing::Uarch uarch = timing::Uarch::intelXeonE52690();

    sim::ReplPolicyKind l1_policy = sim::ReplPolicyKind::TreePlru;
    /** Shared-LLC policy; nullopt keeps the topology default (SRRIP). */
    std::optional<sim::ReplPolicyKind> llc_policy;
    sim::PlMode pl_mode = sim::PlMode::Disabled; //!< single-core only

    /**
     * Secure-cache mode of the private L1(s) (Section IX-B defenses),
     * honoured on both topologies.  Dawg partitions each L1 set's ways
     * and replacement state between the sender and receiver domains
     * (thread % domains), which is exactly what kills the L1 LRU
     * channels; RandomFill decouples the fill address from the miss
     * address.  LLC-carrier channels are unaffected by construction.
     */
    sim::SecureMode l1_secure = sim::SecureMode::None;

    /**
     * Secure-cache mode of the shared LLC (multi-core topology only;
     * ignored on single-core sessions, whose LLC the channels never
     * carry state through).  SecureMode::Sharp turns on per-line
     * ownership with eviction filtering: the cross-core receiver's walk
     * can no longer displace the sender-owned line, which is the
     * detect-and-defend scenario `sharp_defense` scores.
     */
    sim::SecureMode llc_secure = sim::SecureMode::None;

    /**
     * SHARP LLC only: alarm budget per core before its forced evictions
     * are denied (access served uncached).  0 = detection only.
     */
    std::uint32_t llc_alarm_threshold = 0;

    /**
     * Number of cooperating receiver threads (the multi-spy adversary;
     * see channel/multi_spy.hpp).  1 = the ordinary factory receiver.
     * Values > 1 require CrossCore + ChannelId::XCoreLruAlg2: spy j
     * runs on core 1 + j over probe-slice j, and the per-spy symbol
     * rows are merged (any-spy-wins) before scoring.
     */
    std::uint32_t spies = 1;

    /**
     * Write policy of every cache level (applied uniformly to the whole
     * topology).  Write-back + write-allocate is the default every
     * modeled machine uses; the write-through settings exist for the
     * `dirty_error_rate` ablation — a write-through level never holds a
     * dirty line, which kills the dirty-state channels.
     */
    sim::WriteHitPolicy write_hit = sim::WriteHitPolicy::WriteBack;
    sim::WriteMissPolicy write_miss = sim::WriteMissPolicy::WriteAllocate;

    std::uint32_t d = 0;          //!< receiver init depth; 0 = default
    std::uint64_t tr = 600;       //!< receiver sampling period (cycles)
    std::uint64_t ts = 6000;      //!< sender per-bit period (cycles)
    Bits message;                 //!< bits to transmit
    std::uint32_t repeats = 1;
    bool infinite = false;        //!< sender loops forever; no decode

    /**
     * Also emit the aligned decode view the leakage estimator consumes
     * (SessionResult::decoded_symbols).  Off by default so the byte
     * layout of existing scoring paths is untouched.
     */
    bool collect_symbols = false;

    std::uint32_t target_set = 7;   //!< carrier set of the channel
    std::uint32_t chase_set = 63;   //!< set of the receiver's chain
    bool shared_same_vaddr = true;  //!< false: separate address spaces
                                    //!< (AMD utag experiment)
    bool sender_locks_line = false; //!< PL-cache attack (Fig. 11)
    std::uint32_t encode_gap = 40;
    std::uint64_t max_samples = 0;  //!< 0: derived from bits, Ts and Tr
                                    //!< (or 300 when infinite)
    std::uint32_t chain_len = 7;

    /**
     * Fast path: issue the LRU parties' multi-line walks as single
     * AccessRun engine events (see ChannelPairConfig::batch_walks).
     * Identical per-access latency/jitter charges, but a walk is one
     * scheduling event, so interleaving under SMT/time-slicing is
     * coarser than per-op stepping.  Off by default — golden experiments
     * stay bit-exact; the bench macro lanes and bulk sweeps turn it on.
     */
    bool batch_walks = false;

    // ----- topology beyond the minimal one the mode implies.
    /** Run on the multi-core topology even without noise cores or
     *  cross-core parties (the SMT-pair-on-core-0 scenarios). */
    bool multicore = false;
    std::uint32_t noise_cores = 0;  //!< background cores beyond the
                                    //!< party core(s)
    exec::NoiseConfig noise{};      //!< per-noise-core knobs (seed varies)

    /**
     * When set, noise cores replay THIS trace (looping, staggered
     * per-core start offsets) instead of running the synthetic
     * NoiseProgram — the trace-replay front end's way of putting a
     * recorded victim workload beside the covert parties.  Shared so
     * N cores replay one loaded trace without copying it.
     */
    std::shared_ptr<const workload::TraceFile> noise_trace;

    /**
     * CrossCore only: > 0 layers OS time-slicing with this quantum on
     * *each party core* (TimeSlice nested under LowestClock).  For
     * SharingMode::TimeSliced the OS model is `tslice` itself.
     */
    std::uint64_t quantum = 0;
    exec::TimeSlicePolicyConfig tslice{};

    exec::EngineConfig sched{};     //!< engine knobs (seed overridden)
    std::uint64_t seed = 1;
};

/** Everything a figure/table needs from one session. */
struct SessionResult
{
    std::vector<Sample> samples;   //!< receiver's raw trace
    Bits sent;                     //!< ground-truth transmitted bits
    Bits received;                 //!< decoded bits (empty if infinite)

    /**
     * Aligned decode view for leakage estimation, only filled when
     * SessionConfig::collect_symbols is set: exactly one symbol from
     * {0, 1, kErasureSymbol} per entry of `sent`, so (sent[i],
     * decoded_symbols[i]) are the channel's empirical (input, output)
     * pairs.
     */
    Bits decoded_symbols;
    double error_rate = 0.0;       //!< edit distance / sent length
    double kbps = 0.0;             //!< effective rate during the send
    std::uint64_t elapsed_cycles = 0;
    std::uint32_t threshold = 0;   //!< decode decision latency
    bool invert = false;           //!< decode polarity (1 = slow sample)
    std::uint64_t sender_start = 0;
    std::uint64_t back_invalidations = 0; //!< topology-wide (multi-core)
    std::uint32_t cores = 1;       //!< total cores simulated
    std::uint32_t spies = 1;       //!< receiver threads that ran

    // SHARP defender telemetry (all zero unless llc_secure == Sharp).
    std::uint64_t sharp_alarms = 0; //!< refusal events, all cores
    std::uint64_t sharp_forced = 0; //!< forced (all-foreign) evictions
    std::uint64_t sharp_denied = 0; //!< fills denied past the threshold
    /** Per-core alarm counts (index = core; attacker vs benign split). */
    std::vector<std::uint64_t> sharp_core_alarms;

    // Per-party cache behaviour (Tables IV-VII).  On the multi-core
    // topology the private levels are the party's own core's.
    sim::LevelStats sender_l1;
    sim::LevelStats sender_l2;
    sim::LevelStats sender_llc;
    sim::LevelStats receiver_l1;
    sim::LevelStats receiver_llc;

    // Engine telemetry of the two parties.
    exec::ThreadStats sender_stats;
    exec::ThreadStats receiver_stats;
};

/** The cache level that carries the channel state for this config. */
Carrier sessionCarrier(const SessionConfig &config);

/** Does this config need the multi-core topology? */
bool sessionMultiCore(const SessionConfig &config);

/** The carrier-geometry address plan the parties agree on. */
ChannelLayout sessionLayoutFor(const SessionConfig &config);

/** Run a full transmission and decode it. */
SessionResult runSession(const SessionConfig &config);

/**
 * Observation experiment (Figures 6, 8 and 15): the sender constantly
 * sends @p constant_bit (config.message/repeats are ignored); the
 * receiver takes max_samples measurements with period Tr; returns the
 * fraction of post-warm-up samples the receiver reads as 1.
 */
double sessionPercentOnes(SessionConfig config, std::uint8_t constant_bit);

} // namespace lruleak::channel

#endif // LRULEAK_CHANNEL_SESSION_HPP
