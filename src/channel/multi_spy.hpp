/**
 * @file
 * The multi-spy adversary against a SHARP-protected shared LLC.
 *
 * SHARP's per-line ownership makes the single cross-core receiver
 * harmless: its eviction walk can never displace the sender-owned line
 * (there is always an unowned or self-owned way to re-victimize), so
 * the sender keeps hitting privately, SHARP's scan-order
 * re-victimization replaces the LRU-order evictions Algorithm 2
 * decodes, and the replacement state stops carrying the message.  The
 * counter-attack is cooperation, built on two observations: a line is
 * protected only while a *private* copy pins its ownership, and
 * SHARP's re-victimization is deterministic once exactly one unowned
 * way exists.  In a covert channel the sender colludes, so the team
 * plays both sides of the ownership rule (pin-slices protocol,
 * MultiSpyConfig::pin_slices + SenderConfig::kick_private):
 *
 *  - K-1 "holders" split the first ways-1 probe lines and *pin* them:
 *    the per-Tr re-measure walk keeps every private copy hot, so the
 *    slice is owned — unevictable short of a forced eviction — at
 *    every instant.  Unvisited at the LLC, the slices also go
 *    replacement-stale there, which keeps the victim preview pointed
 *    at a holder line and SHARP permanently in its re-victimize path.
 *
 *  - one "trigger" (the last spy) plants a single canary conflict
 *    line in the target set; each iteration it measures the canary
 *    and then kicks its own private copies out, leaving the canary
 *    resident but *unowned* — the one line SHARP may take.
 *
 *  - the sender (SenderConfig::kick_private) kicks its own private
 *    copies after every touch of the target line, waiving the
 *    protection a real victim would enjoy, and parks the line —
 *    resident, unowned — once at the start of every 0-bit.
 *
 * The target set then holds 15 owned holder lines plus the canary and
 * the sender's line fighting over the last way, exactly one of them
 * resident at a time.  A 1-bit is a sustained alternation: the
 * sender's encode access misses, the refill's victim preview lands on
 * an owned holder line, SHARP refuses (alarm) and re-victimizes the
 * only unowned way — the canary.  The trigger's next measure misses
 * to memory (the observation) and its refill takes the sender's
 * unowned line back out, which the sender re-faults within its encode
 * gap: the canary stays out for most of every Tr and the trigger's
 * row reads slow for the whole bit.  A 0-bit damps in one round: the
 * parked sender line absorbs the last refill and everything sits
 * still.
 *
 * The attack trades detectability for restored leakage — every churn
 * round costs a refusal alarm on the sender's and the trigger's core,
 * ~20 alarms per transmitted 1 — and quantifying that tradeoff (plus
 * the alarm-threshold fill-denial response, which together with
 * ambient noise does suppress the team) is what the `sharp_defense`
 * experiment does.  With K = 2 the single holder can pin at most its
 * private capacity (8 ways), the set never wedges, victim previews
 * find unowned junk and evict it silently: the channel stays dead and
 * SHARP forces the adversary to at least three cooperating cores.
 *
 * Decode stays on the unchanged Session/Calibration pipeline: every
 * spy yields an ordinary Sample trace; windowSymbols() aligns each
 * trace to the sender's bit clock and mergeSpySymbols() folds the
 * per-bit symbol rows into one (any spy saw the eviction => 1).  The
 * trigger's canary row carries the signal; holder rows read all-fast
 * and only contribute the occasional back-invalidation they absorb.
 * Against an unprotected LLC the team instead keeps slices young with
 * kick+walk bursts (pin_slices off) so replacement age steers fills
 * into the canary, and a team of one is the plain sliced receiver
 * with a kick walk — same phase machine, no roles.
 */

#ifndef LRULEAK_CHANNEL_MULTI_SPY_HPP
#define LRULEAK_CHANNEL_MULTI_SPY_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "channel/bitstring.hpp"
#include "channel/layout.hpp"
#include "channel/lru_channel.hpp"
#include "exec/op.hpp"

namespace lruleak::channel {

/** Knobs of the whole K-spy team (each spy derives its own share). */
struct MultiSpyConfig
{
    std::uint32_t spies = 2;      //!< K cooperating receiver threads
    std::uint32_t d = 12;         //!< single-spy init depth (K = 1 only)
    std::uint64_t tr = 3000;      //!< per-spy sampling period (cycles)
    std::uint64_t max_samples = 1000; //!< per-spy iteration budget
    std::uint32_t chain_len = 7;  //!< chase-chain length per spy
    /**
     * Kick-walk length: accesses per iteration to lines sharing the
     * probe set's private L1/L2 index but mapping to other LLC sets.
     * 16 cycles both 8-way private levels completely, expelling the
     * spy's private probe copies so its next probes reach the LLC.
     * The trigger never kicks — its pinned canary copy is the attack.
     */
    std::uint32_t kick_len = 16;

    /**
     * Anti-SHARP team protocol (file comment).  Holders *pin* their
     * slices — no kick, so their private copies survive and the slice
     * stays owned at every instant — while the trigger kicks its own
     * canary copies each iteration, leaving the canary resident but
     * unowned: the unique line SHARP's re-victimization may take.
     * Pairs with SenderConfig::kick_private on the sender side.  Off
     * (kick-walk mode) for unprotected LLCs, where victim selection
     * follows replacement age and the slices must stay young instead.
     */
    bool pin_slices = false;
};

/**
 * Spy @p index of the team (see file comment for the role split).
 * Thread id is kReceiverThread + index so per-thread cache counters
 * stay separable; channel::Session pins spy j to core 1 + j.
 */
class SpyReceiver : public exec::ThreadProgram
{
  public:
    SpyReceiver(const ChannelLayout &layout, const MultiSpyConfig &config,
                std::uint32_t index);

    exec::Op next(std::uint64_t now) override;
    void onResult(const exec::OpResult &result) override;

    const std::vector<Sample> &samples() const { return samples_; }
    bool isTrigger() const { return trigger_; }
    std::uint32_t sliceBegin() const { return lo_; }
    std::uint32_t sliceEnd() const { return hi_; }
    std::uint32_t initDepth() const { return d_; }

  private:
    enum class Phase
    {
        Prewarm, //!< classic: chase fetch; trigger: canary install
        Init,    //!< K = 1 only: classic d-deep init of the slice
        Kick,    //!< expel own private probe copies
        Sleep,   //!< spin until mark + Tr
        Walk,    //!< classic: decode walk; holder: slice measures
        Chain,   //!< K = 1 only: re-warm the chase chain
        Measure, //!< classic: rotor line; trigger: the canary
        Finished,
    };

    ChannelLayout layout_;
    MultiSpyConfig config_;
    std::uint32_t index_in_team_;
    bool trigger_ = false;
    std::uint32_t lo_ = 0;         //!< first probe line of the slice
    std::uint32_t hi_ = 0;         //!< one past the last probe line
    std::uint32_t d_ = 0;          //!< K = 1: init depth of the walk
    std::vector<sim::MemRef> chase_;
    /** All-L1 chain expectation reused by every measure op. */
    std::vector<sim::HitLevel> chain_hint_;
    std::vector<sim::MemRef> kick_;
    sim::MemRef canary_{};         //!< trigger only: the planted line
    std::vector<Sample> samples_;

    Phase phase_ = Phase::Prewarm;
    std::uint32_t step_ = 0;       //!< loop index within the phase
    std::uint64_t mark_ = 0;       //!< Tlast of Algorithm 3
    std::uint64_t iter_ = 0;       //!< completed iterations

    sim::MemRef probeLine(std::uint32_t i) const;
};

/** The whole K-spy team, constructed over one shared layout. */
class MultiSpyReceiver
{
  public:
    MultiSpyReceiver(const ChannelLayout &layout, MultiSpyConfig config);

    std::uint32_t spies() const
    {
        return static_cast<std::uint32_t>(spies_.size());
    }
    SpyReceiver &spy(std::uint32_t j) { return *spies_[j]; }
    const SpyReceiver &spy(std::uint32_t j) const { return *spies_[j]; }

    const std::vector<Sample> &
    spySamples(std::uint32_t j) const
    {
        return spies_[j]->samples();
    }

    /** All spies' samples in one trace, ordered by time. */
    std::vector<Sample> mergedSamples() const;

  private:
    std::vector<std::unique_ptr<SpyReceiver>> spies_;
};

/**
 * Fold K aligned per-spy symbol rows (one windowSymbols() result per
 * spy, each exactly nbits long) into one row: a bit decodes to 1 when
 * *any* spy saw the eviction, to kErasureSymbol when *every* spy's
 * window was empty, and to 0 otherwise.  The output aligns 1:1 with
 * the sent bits, like the single-receiver windowSymbols() contract.
 */
Bits mergeSpySymbols(const std::vector<Bits> &per_spy);

} // namespace lruleak::channel

#endif // LRULEAK_CHANNEL_MULTI_SPY_HPP
