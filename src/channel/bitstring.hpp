/**
 * @file
 * Bit-string helpers for the covert-channel experiments: random message
 * generation (the paper's random 128-bit strings), text conversion for
 * the examples, and pretty-printing.
 */

#ifndef LRULEAK_CHANNEL_BITSTRING_HPP
#define LRULEAK_CHANNEL_BITSTRING_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.hpp"

namespace lruleak::channel {

/** A message as a sequence of 0/1 bytes. */
using Bits = std::vector<std::uint8_t>;

/** Random bit string of length @p n. */
Bits randomBits(std::size_t n, std::uint64_t seed);

/** Alternating 0,1,0,1,... (the pattern of Figures 5/7/14). */
Bits alternatingBits(std::size_t n, std::uint8_t first = 0);

/** Repeat @p bits @p times. */
Bits repeatBits(const Bits &bits, std::size_t times);

/** ASCII text -> bits, MSB first per byte. */
Bits textToBits(const std::string &text);

/** Bits -> ASCII text (truncates trailing partial byte). */
std::string bitsToText(const Bits &bits);

/** "0101..." rendering. */
std::string bitsToString(const Bits &bits);

/** Fraction of ones in @p bits (0 if empty). */
double fractionOnes(const Bits &bits);

} // namespace lruleak::channel

#endif // LRULEAK_CHANNEL_BITSTRING_HPP
