/**
 * @file
 * The cross-core LRU channel: Algorithm 2 carried by the shared
 * inclusive LLC instead of a shared L1.
 *
 * DEPRECATED SHIMS.  runXCoreChannel and runSmtMulticore are now thin
 * config translators over the unified channel-session pipeline
 * (channel/session.hpp): XCoreConfig maps to a SessionConfig with
 * channel = ChannelId::XCoreLruAlg2 and mode = SharingMode::CrossCore;
 * SmtMultiCoreConfig maps to mode = SharingMode::HyperThreaded with
 * multicore = true.  New code should build the SessionConfig directly.
 *
 * Sender and receiver run on different cores and share no memory; they
 * agree only on an LLC set index.  The protocol is the paper's
 * Algorithm 2 verbatim, just instantiated over the LLC geometry
 * (16 ways instead of 8) — the same LruSender/LruReceiver programs run
 * unchanged over a ChannelLayout built from the LLC config:
 *
 *  - the receiver's lines 0..N-1 all map to one LLC set *and*, because
 *    lines in one LLC set share address bits 6..16, to one private L1/L2
 *    set as well, so walking them always spills past the 8-way private
 *    caches into the LLC.  The timed line-0 access therefore reads
 *    "LLC hit" vs "memory miss" — a far larger margin than L1 vs L2;
 *  - the sender encodes a 1 by touching its own line N in the set.  The
 *    fill both updates the LLC replacement state and displaces one
 *    receiver line; the receiver's next walk re-fills the set and, with
 *    the perturbed LRU state, evicts line 0 with the Table-I
 *    probabilities the single-core channel relies on;
 *  - **back-invalidation closes the loop in both directions**: the
 *    receiver's walk evicts the sender's line from the LLC, which
 *    invalidates it in the sender's private L1 — so the sender's next
 *    encode access misses privately and reaches the shared LLC again
 *    instead of being absorbed by its own L1.  Without inclusive
 *    back-invalidation the channel dies after one bit.
 *
 * Noise cores (exec::NoiseProgram) can be added to model co-scheduled
 * background processes contending for the same LLC.
 */

#ifndef LRULEAK_CHANNEL_XCORE_CHANNEL_HPP
#define LRULEAK_CHANNEL_XCORE_CHANNEL_HPP

#include <cstdint>

#include "channel/session.hpp"

namespace lruleak::channel {

/** Full configuration of one cross-core channel run. */
struct XCoreConfig
{
    timing::Uarch uarch = timing::Uarch::intelXeonE52690();
    sim::ReplPolicyKind llc_policy = sim::ReplPolicyKind::TreePlru;
    std::uint32_t noise_cores = 0;  //!< background cores beyond the pair

    std::uint32_t d = 12;           //!< receiver init depth (<= LLC ways)
    std::uint64_t tr = 3000;        //!< receiver sampling period (cycles)
    std::uint64_t ts = 30000;       //!< sender per-bit period (cycles)
    Bits message;                   //!< bits to transmit
    std::uint32_t repeats = 1;

    std::uint32_t target_set = 7;   //!< LLC set carrying the channel
    std::uint32_t chase_set = 63;   //!< LLC set of the receiver's chain
    std::uint32_t encode_gap = 40;
    std::uint64_t max_samples = 0;  //!< 0: derived from bits, Ts and Tr

    exec::NoiseConfig noise{};      //!< per-noise-core knobs (seed varies)
    exec::EngineConfig sched{};     //!< engine knobs (seed is overridden
                                    //!< by the top-level seed below)

    /**
     * 0: every party owns its core outright (the classic cross-core
     * setting).  > 0: the OS time-slices *each* party core with this
     * scheduling quantum — an exec::TimeSlice policy nests under the
     * cross-core LowestClock arbitration, so sender and receiver lose
     * slices to background processes and every context switch sprays
     * kernel lines through the shared LLC.  The combined scenario behind
     * the `xcore_timesliced` experiment.
     */
    std::uint64_t quantum = 0;
    exec::TimeSlicePolicyConfig tslice{}; //!< other OS knobs (quantum and
                                          //!< per-core ids derived)
    std::uint64_t seed = 1;
};

/** Everything a figure/table needs from one cross-core run. */
struct XCoreResult
{
    std::vector<Sample> samples;   //!< receiver's raw trace
    Bits sent;                     //!< ground-truth transmitted bits
    Bits received;                 //!< decoded bits
    double error_rate = 0.0;       //!< edit distance / sent length
    double kbps = 0.0;             //!< effective rate during the send
    std::uint64_t elapsed_cycles = 0;
    std::uint32_t threshold = 0;   //!< LLC-hit/memory-miss decision point
    std::uint64_t sender_start = 0;
    std::uint64_t back_invalidations = 0; //!< topology-wide count
    std::uint32_t cores = 2;       //!< total cores simulated

    // Per-party cache behaviour at the private and shared levels.
    sim::LevelStats sender_l1;
    sim::LevelStats sender_llc;
    sim::LevelStats receiver_llc;
};

/** Derive the multi-core topology a config implies (2 + noise cores). */
sim::MultiCoreConfig multiCoreConfigFor(const XCoreConfig &config);

/** The LLC-geometry address plan the cross-core parties agree on. */
ChannelLayout xcoreLayoutFor(const XCoreConfig &config);

/** The SessionConfig a legacy XCoreConfig translates to. */
SessionConfig sessionConfigFor(const XCoreConfig &config);

/** Run a full cross-core transmission and decode it (shim). */
XCoreResult runXCoreChannel(const XCoreConfig &config);

// --------------------------------------- SMT pair on a multi-core system

/**
 * Configuration of the combined scenario behind `smt_multicore_traces`:
 * the paper's hyper-threaded L1 channel (sender and receiver as SMT
 * siblings on core 0, Algorithm 1/2 over the core-0 L1) running inside
 * an N-core system whose remaining cores execute background-noise
 * processes.  The noise cores never touch the channel's L1 directly —
 * they reach it through the shared inclusive LLC: their fills evict
 * LLC lines whose back-invalidation clears the pair's lines out of the
 * core-0 private caches, injecting misses the single-core SMT setting
 * never sees.
 */
struct SmtMultiCoreConfig
{
    timing::Uarch uarch = timing::Uarch::intelXeonE52690();
    LruAlgorithm alg = LruAlgorithm::Alg1Shared;
    sim::ReplPolicyKind l1_policy = sim::ReplPolicyKind::TreePlru;
    std::uint32_t noise_cores = 2;  //!< cores beyond the SMT pair's core

    std::uint32_t d = 8;            //!< receiver init-phase parameter
    std::uint64_t tr = 600;         //!< receiver sampling period (cycles)
    std::uint64_t ts = 6000;        //!< sender per-bit period (cycles)
    Bits message;                   //!< bits to transmit
    std::uint32_t repeats = 1;

    std::uint32_t target_set = 7;   //!< core-0 L1 set carrying the channel
    std::uint32_t chase_set = 63;   //!< L1 set of the receiver's chain
    std::uint32_t encode_gap = 40;
    std::uint64_t max_samples = 0;  //!< 0: derived from bits, Ts and Tr

    exec::NoiseConfig noise{};      //!< per-noise-core knobs (seed varies)
    exec::EngineConfig sched{};     //!< engine knobs (seed overridden)
    std::uint64_t seed = 1;
};

/** Everything the traces experiment needs from one combined run. */
struct SmtMultiCoreResult
{
    std::vector<Sample> samples;   //!< receiver's raw trace
    Bits sent;                     //!< ground-truth transmitted bits
    Bits received;                 //!< decoded bits
    double error_rate = 0.0;       //!< edit distance / sent length
    double kbps = 0.0;             //!< effective rate during the send
    std::uint64_t elapsed_cycles = 0;
    std::uint32_t threshold = 0;   //!< L1-hit/L1-miss decision latency
    std::uint64_t sender_start = 0;
    std::uint64_t back_invalidations = 0; //!< topology-wide count
    std::uint32_t cores = 1;       //!< total cores simulated

    sim::LevelStats sender_l1;     //!< core-0 L1, sender thread
    sim::LevelStats receiver_l1;   //!< core-0 L1, receiver thread
};

/** The SessionConfig a legacy SmtMultiCoreConfig translates to. */
SessionConfig sessionConfigFor(const SmtMultiCoreConfig &config);

/** Run the SMT-pair-on-core-0 scenario and decode it (shim). */
SmtMultiCoreResult runSmtMulticore(const SmtMultiCoreConfig &config);

} // namespace lruleak::channel

#endif // LRULEAK_CHANNEL_XCORE_CHANNEL_HPP
