/**
 * @file
 * Wagner-Fischer dynamic program, two-row formulation.
 */

#include "channel/edit_distance.hpp"

#include <algorithm>
#include <vector>

namespace lruleak::channel {

std::size_t
editDistance(const Bits &a, const Bits &b)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    if (n == 0)
        return m;
    if (m == 0)
        return n;

    std::vector<std::size_t> prev(m + 1), curr(m + 1);
    for (std::size_t j = 0; j <= m; ++j)
        prev[j] = j;

    for (std::size_t i = 1; i <= n; ++i) {
        curr[0] = i;
        for (std::size_t j = 1; j <= m; ++j) {
            const std::size_t substitute =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            const std::size_t remove = prev[j] + 1;
            const std::size_t insert = curr[j - 1] + 1;
            curr[j] = std::min({substitute, remove, insert});
        }
        std::swap(prev, curr);
    }
    return prev[m];
}

double
editErrorRate(const Bits &sent, const Bits &received)
{
    if (sent.empty())
        return 0.0;
    return static_cast<double>(editDistance(sent, received)) /
           static_cast<double>(sent.size());
}

} // namespace lruleak::channel
