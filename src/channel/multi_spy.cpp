/**
 * @file
 * Multi-spy receiver implementation.
 */

#include "channel/multi_spy.hpp"

#include <algorithm>
#include <stdexcept>

#include "channel/decoder.hpp"

namespace lruleak::channel {

namespace {

// Per-spy address bases, clear of every ChannelLayout base and of the
// noise-program footprints at 0x6000'0000'0000+.
constexpr sim::Addr kKickBase = 0x5000'0000'0000ULL;
constexpr sim::Addr kSpyStride = 0x0010'0000'0000ULL;

} // namespace

SpyReceiver::SpyReceiver(const ChannelLayout &layout,
                         const MultiSpyConfig &config, std::uint32_t index)
    : layout_(layout), config_(config), index_in_team_(index)
{
    const std::uint32_t ways = layout_.ways();
    const std::uint32_t team = std::max<std::uint32_t>(config_.spies, 1);
    const std::uint32_t sets = layout_.layout().numSets();
    const sim::Addr spy_base = kKickBase + index * kSpyStride;
    const sim::ThreadId thread = kReceiverThread + index;

    trigger_ = team >= 2 && index == team - 1;
    if (trigger_) {
        // The trigger holds no probe slice; it plants one canary
        // conflict line in the target set (file comment).
        lo_ = hi_ = 0;
        const sim::Addr a = sim::lineInSet(layout_.layout(),
                                           layout_.targetSet(), 0, spy_base);
        canary_ = sim::MemRef{a, a, thread, false};
    } else if (team == 1) {
        // Single spy: the whole probe set, classic init depth.
        lo_ = 0;
        hi_ = ways;
        d_ = std::clamp<std::uint32_t>(config_.d, 1, ways);
    } else {
        // Holder h of K-1: an equal share of the first ways - 1 probe
        // lines (the one-way slack is what the sender's line and the
        // trigger's canary fight over), capped at the 8 ways the
        // private levels can pin.
        const std::uint32_t holders = team - 1;
        const std::uint32_t span = ways > 1 ? ways - 1 : 1;
        lo_ = index * span / holders;
        hi_ = (index + 1) * span / holders;
        if (hi_ <= lo_)
            throw std::invalid_argument(
                "SpyReceiver: more holders than probe lines");
        hi_ = std::min(hi_, lo_ + 8);
    }

    // Private chase chain in a per-spy set (never the target set), so
    // the K chains do not fight each other for ways.  Only the classic
    // single spy walks it; holders and the trigger synthesize the
    // chase-latency expectation in the measure op instead.
    std::uint32_t chase = (layout_.chaseSet() + index) % sets;
    if (chase == layout_.targetSet())
        chase = (chase + 1) % sets;
    chase_.reserve(config_.chain_len);
    for (std::uint32_t i = 0; i < config_.chain_len; ++i) {
        const sim::Addr a = sim::lineInSet(
            layout_.layout(), chase, i,
            ChannelLayout::kChaseBase + index * kSpyStride);
        chase_.push_back(sim::MemRef{a, a, thread, false});
    }

    // Kick lines: same private-cache set as the probe set (the stride
    // keeps the low set bits, which are the L1/L2 index bits, equal)
    // but different LLC sets — they expel the spy's private copies
    // without touching the target LLC set, so the next walk reaches
    // the shared level and re-stamps ownership and RRIP age there.
    // Only three LLC sets alias the probe set's private index, so the
    // whole team shares one kick pool (kKickBase, no per-spy stride —
    // shared lines just hit) and holders kick only the 8 ways of the
    // one private set their slice occupies; the full 16-line cycle is
    // the classic spy's, whose probe walk spans two private sets'
    // worth of ways.
    // In pin-slices mode only the trigger kicks, and it needs the full
    // cycle: a half-expelled canary (still in L2) would stay owned and
    // SHARP would never let the sender's fill take it.
    const std::uint32_t stride = std::max<std::uint32_t>(sets / 4, 1);
    const std::uint32_t kicks =
        team == 1 || config_.pin_slices
            ? config_.kick_len
            : std::min<std::uint32_t>(config_.kick_len, 8);
    kick_.reserve(kicks);
    for (std::uint32_t i = 0; i < kicks; ++i) {
        const std::uint32_t kick_set =
            (layout_.targetSet() + stride * (i % 3 + 1)) % sets;
        const sim::Addr a = sim::lineInSet(layout_.layout(), kick_set,
                                           i / 3, kKickBase);
        kick_.push_back(sim::MemRef{a, a, thread, false});
    }

    chain_hint_.assign(config_.chain_len, sim::HitLevel::L1);
    samples_.reserve(config_.max_samples);
}

sim::MemRef
SpyReceiver::probeLine(std::uint32_t i) const
{
    sim::MemRef ref = layout_.receiverLine(LruAlgorithm::Alg2Disjoint, i);
    ref.thread = kReceiverThread + index_in_team_;
    return ref;
}

exec::Op
SpyReceiver::next(std::uint64_t now)
{
    const bool classic = config_.spies <= 1;
    switch (phase_) {
      case Phase::Prewarm:
        if (classic && step_ < chase_.size())
            return exec::Op::access(chase_[step_++]);
        if (trigger_ && step_ < 1) {
            // Plant the canary; it goes stale at the LLC on purpose.
            ++step_;
            return exec::Op::access(canary_);
        }
        step_ = 0;
        phase_ = classic ? Phase::Init : Phase::Sleep;
        mark_ = now;
        if (!classic) {
            // Stagger the team's phases across the period so one
            // holder's kick burst (its slice momentarily unowned)
            // never overlaps another spy's refill.
            mark_ += config_.tr * index_in_team_ / config_.spies;
            return next(now);
        }
        [[fallthrough]];

      case Phase::Init:
        if (step_ < d_)
            return exec::Op::access(probeLine(lo_ + step_++));
        step_ = 0;
        phase_ = Phase::Sleep;
        [[fallthrough]];

      case Phase::Sleep: {
        phase_ = classic ? Phase::Walk
                         : (trigger_ ? Phase::Measure
                                     : (config_.pin_slices ? Phase::Walk
                                                           : Phase::Kick));
        const std::uint64_t deadline = mark_ + config_.tr;
        mark_ = std::max(deadline, now);
        if (deadline > now)
            return exec::Op::spinUntil(deadline);
        return next(now);
      }

      case Phase::Kick:
        // Expel the private probe copies so the next walk reaches the
        // LLC.  For holders the kick runs back-to-back with the walk:
        // the slice is unowned only for this short burst, and owned —
        // and, freshly re-stamped, RRIP-young — through the long sleep
        // that follows.
        if (step_ < kick_.size())
            return exec::Op::access(kick_[step_++]);
        step_ = 0;
        if (classic)
            phase_ = Phase::Chain;
        else if (trigger_)
            // Pin-slices trigger: kick ran after the measure; the
            // iteration is complete.
            phase_ = ++iter_ >= config_.max_samples ? Phase::Finished
                                                    : Phase::Sleep;
        else
            phase_ = Phase::Walk;
        return next(now);

      case Phase::Walk:
        if (classic) {
            // Classic decode walk over the lines past the init depth.
            if (lo_ + d_ + step_ < hi_)
                return exec::Op::access(probeLine(lo_ + d_ + step_++));
            step_ = 0;
            phase_ = Phase::Kick;
            return next(now);
        }
        // Holder: timed re-walk of the whole slice right after the
        // kick.  Reaching the LLC re-stamps ownership and RRIP age, so
        // through the sleep the slice is young and owned — never the
        // forced-eviction victim.  A back-invalidated line misses to
        // memory (slow): the holder both observes the eviction and
        // re-pins the line.
        if (step_ < hi_ - lo_)
            return exec::Op::measure(probeLine(lo_ + step_++), chain_hint_);
        step_ = 0;
        phase_ = ++iter_ >= config_.max_samples ? Phase::Finished
                                                : Phase::Sleep;
        return next(now);

      case Phase::Chain:
        if (step_ < chase_.size())
            return exec::Op::access(chase_[step_++]);
        step_ = 0;
        phase_ = Phase::Measure;
        [[fallthrough]];

      case Phase::Measure:
        if (classic) {
            phase_ = Phase::Init;
            return exec::Op::measure(probeLine(lo_), chain_hint_);
        }
        // Trigger: one timed canary access per iteration.  A fast
        // access means the canary still sits in the LLC (sender idle);
        // a memory-latency miss means the sender's fill took it — and
        // this very measure refills it, taking the sender's (unowned)
        // line back out in turn (file comment).  In pin-slices mode
        // the measure is followed by a kick burst that re-releases the
        // canary's ownership for the next round.
        if (config_.pin_slices)
            phase_ = Phase::Kick;
        else
            phase_ = ++iter_ >= config_.max_samples ? Phase::Finished
                                                    : Phase::Sleep;
        return exec::Op::measure(canary_, chain_hint_);

      case Phase::Finished:
        break;
    }
    return exec::Op::done();
}

void
SpyReceiver::onResult(const exec::OpResult &result)
{
    if (result.kind != exec::OpKind::Measure)
        return;
    samples_.push_back(Sample{result.tsc, result.measured, result.level});
    // The classic single spy takes one sample per iteration and stops
    // at the sample budget; team spies stop on the iteration budget in
    // next() instead (holders emit a whole slice of samples per
    // iteration).
    if (config_.spies <= 1 && samples_.size() >= config_.max_samples)
        phase_ = Phase::Finished;
}

MultiSpyReceiver::MultiSpyReceiver(const ChannelLayout &layout,
                                   MultiSpyConfig config)
{
    const std::uint32_t team = std::max<std::uint32_t>(config.spies, 1);
    spies_.reserve(team);
    for (std::uint32_t j = 0; j < team; ++j)
        spies_.push_back(std::make_unique<SpyReceiver>(layout, config, j));
}

std::vector<Sample>
MultiSpyReceiver::mergedSamples() const
{
    std::vector<Sample> merged;
    std::size_t total = 0;
    for (std::uint32_t j = 0; j < spies(); ++j)
        total += spies_[j]->samples().size();
    merged.reserve(total);
    for (std::uint32_t j = 0; j < spies(); ++j)
        merged.insert(merged.end(), spies_[j]->samples().begin(),
                      spies_[j]->samples().end());
    // Stable: equal timestamps keep team order, so the merge is
    // deterministic for any spy count.
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Sample &a, const Sample &b) {
                         return a.tsc < b.tsc;
                     });
    return merged;
}

Bits
mergeSpySymbols(const std::vector<Bits> &per_spy)
{
    if (per_spy.empty())
        return {};
    const std::size_t nbits = per_spy.front().size();
    for (const Bits &row : per_spy) {
        if (row.size() != nbits)
            throw std::invalid_argument(
                "mergeSpySymbols: rows must be equally long");
    }

    Bits merged(nbits, 0);
    for (std::size_t i = 0; i < nbits; ++i) {
        bool any_one = false;
        bool all_erased = true;
        for (const Bits &row : per_spy) {
            any_one = any_one || row[i] == 1;
            all_erased = all_erased && row[i] == kErasureSymbol;
        }
        merged[i] = any_one ? 1 : (all_erased ? kErasureSymbol : 0);
    }
    return merged;
}

} // namespace lruleak::channel
