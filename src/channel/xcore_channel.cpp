/**
 * @file
 * Deprecated cross-core shims: XCoreConfig / SmtMultiCoreConfig
 * translated onto the unified channel-session pipeline.
 */

#include "channel/xcore_channel.hpp"

namespace lruleak::channel {

sim::MultiCoreConfig
multiCoreConfigFor(const XCoreConfig &config)
{
    sim::MultiCoreConfig mc;
    mc.cores = 2 + config.noise_cores;
    mc.llc.policy = config.llc_policy;
    mc.seed = config.seed;
    return mc;
}

ChannelLayout
xcoreLayoutFor(const XCoreConfig &config)
{
    return sessionLayoutFor(sessionConfigFor(config));
}

SessionConfig
sessionConfigFor(const XCoreConfig &config)
{
    SessionConfig s;
    s.channel = ChannelId::XCoreLruAlg2;
    s.mode = SharingMode::CrossCore;
    s.uarch = config.uarch;
    s.llc_policy = config.llc_policy;
    s.noise_cores = config.noise_cores;
    s.d = config.d;
    s.tr = config.tr;
    s.ts = config.ts;
    s.message = config.message;
    s.repeats = config.repeats;
    s.target_set = config.target_set;
    s.chase_set = config.chase_set;
    s.encode_gap = config.encode_gap;
    s.max_samples = config.max_samples;
    s.noise = config.noise;
    s.quantum = config.quantum;
    s.tslice = config.tslice;
    s.sched = config.sched;
    s.seed = config.seed;
    return s;
}

XCoreResult
runXCoreChannel(const XCoreConfig &config)
{
    const SessionResult r = runSession(sessionConfigFor(config));

    XCoreResult res;
    res.samples = r.samples;
    res.sent = r.sent;
    res.received = r.received;
    res.error_rate = r.error_rate;
    res.kbps = r.kbps;
    res.elapsed_cycles = r.elapsed_cycles;
    res.threshold = r.threshold;
    res.sender_start = r.sender_start;
    res.back_invalidations = r.back_invalidations;
    res.cores = r.cores;
    res.sender_l1 = r.sender_l1;
    res.sender_llc = r.sender_llc;
    res.receiver_llc = r.receiver_llc;
    return res;
}

// --------------------------------------- SMT pair on a multi-core system

SessionConfig
sessionConfigFor(const SmtMultiCoreConfig &config)
{
    SessionConfig s;
    s.channel = config.alg == LruAlgorithm::Alg1Shared
                    ? ChannelId::LruAlg1
                    : ChannelId::LruAlg2;
    s.mode = SharingMode::HyperThreaded;
    s.multicore = true; // core 0's private L1 carries the channel
    s.uarch = config.uarch;
    s.l1_policy = config.l1_policy;
    s.noise_cores = config.noise_cores;
    s.d = config.d;
    s.tr = config.tr;
    s.ts = config.ts;
    s.message = config.message;
    s.repeats = config.repeats;
    s.target_set = config.target_set;
    s.chase_set = config.chase_set;
    s.encode_gap = config.encode_gap;
    s.max_samples = config.max_samples;
    s.noise = config.noise;
    s.sched = config.sched;
    s.seed = config.seed;
    return s;
}

SmtMultiCoreResult
runSmtMulticore(const SmtMultiCoreConfig &config)
{
    const SessionResult r = runSession(sessionConfigFor(config));

    SmtMultiCoreResult res;
    res.samples = r.samples;
    res.sent = r.sent;
    res.received = r.received;
    res.error_rate = r.error_rate;
    res.kbps = r.kbps;
    res.elapsed_cycles = r.elapsed_cycles;
    res.threshold = r.threshold;
    res.sender_start = r.sender_start;
    res.back_invalidations = r.back_invalidations;
    res.cores = r.cores;
    res.sender_l1 = r.sender_l1;
    res.receiver_l1 = r.receiver_l1;
    return res;
}

} // namespace lruleak::channel
