/**
 * @file
 * Cross-core channel run orchestration.
 */

#include "channel/xcore_channel.hpp"

#include <algorithm>
#include <memory>

#include "timing/pointer_chase.hpp"

namespace lruleak::channel {

sim::MultiCoreConfig
multiCoreConfigFor(const XCoreConfig &config)
{
    sim::MultiCoreConfig mc;
    mc.cores = 2 + config.noise_cores;
    mc.llc.policy = config.llc_policy;
    mc.seed = config.seed;
    return mc;
}

ChannelLayout
xcoreLayoutFor(const XCoreConfig &config)
{
    // The address plan is built from the *LLC* geometry: lines 0..N-1
    // share one LLC set (and, since LLC-set bits contain the private-
    // cache set bits, one private set per core too).
    sim::CacheConfig llc = sim::CacheConfig::intelLlc();
    llc.policy = config.llc_policy;
    return ChannelLayout(llc, config.target_set, config.chase_set,
                         /*shared_same_vaddr=*/true);
}

XCoreResult
runXCoreChannel(const XCoreConfig &config)
{
    const std::size_t nbits = config.message.size() * config.repeats;

    SenderConfig sc;
    sc.alg = LruAlgorithm::Alg2Disjoint;
    sc.message = config.message;
    sc.repeats = config.repeats;
    sc.ts = config.ts;
    sc.encode_gap = config.encode_gap;

    ReceiverConfig rc;
    rc.alg = LruAlgorithm::Alg2Disjoint;
    rc.d = config.d;
    rc.tr = config.tr;
    // Sample slightly past the end of the message so the last bit gets
    // its full window even with scheduling skew.
    rc.max_samples = config.max_samples
        ? config.max_samples
        : (nbits * config.ts) / std::max<std::uint64_t>(config.tr, 1) + 8;

    sim::MultiCoreHierarchy hierarchy(multiCoreConfigFor(config));
    const ChannelLayout layout = xcoreLayoutFor(config);
    LruSender sender(layout, sc);
    LruReceiver receiver(layout, rc);

    std::vector<std::unique_ptr<exec::NoiseProgram>> noise;
    std::vector<exec::ThreadProgram *> programs{&sender, &receiver};
    noise.reserve(config.noise_cores);
    for (std::uint32_t i = 0; i < config.noise_cores; ++i) {
        exec::NoiseConfig nc = config.noise;
        nc.seed = config.seed + 0x6e01'0000ULL + i;
        nc.base = config.noise.base + i * 0x0100'0000'0000ULL;
        noise.push_back(std::make_unique<exec::NoiseProgram>(nc));
        programs.push_back(noise.back().get());
    }

    exec::MultiCoreSchedulerConfig sched_cfg = config.sched;
    sched_cfg.seed = config.seed;
    exec::MultiCoreScheduler sched(hierarchy, config.uarch, sched_cfg);
    const std::uint64_t end = sched.run(programs, /*primary=*/1);

    const timing::MeasurementModel model(config.uarch);

    XCoreResult res;
    res.samples = receiver.samples();
    res.sent = sender.sentBits();
    // The timed line-0 access resolves in the LLC when the line
    // survived and in memory when it was evicted, so the decision
    // threshold sits between those two levels (not L1/L2).
    res.threshold = model.chaseThresholdBetween(sim::HitLevel::LLC,
                                                sim::HitLevel::Memory);
    res.sender_start = sender.startTsc();
    res.cores = hierarchy.cores();

    // Algorithm 2 polarity: a 1 evicts line 0, so high latency = 1.
    res.received = windowDecode(res.samples, res.threshold,
                                /*invert=*/true, res.sender_start,
                                config.ts, nbits);
    res.error_rate = editErrorRate(res.sent, res.received);

    res.elapsed_cycles = end > res.sender_start ? end - res.sender_start
                                                : 0;
    res.kbps = config.uarch.kbps(nbits, res.elapsed_cycles);
    res.back_invalidations = hierarchy.backInvalidations();

    res.sender_l1 = hierarchy.l1(0).counters().forThread(kSenderThread);
    res.sender_llc = hierarchy.llc().counters().forThread(kSenderThread);
    res.receiver_llc =
        hierarchy.llc().counters().forThread(kReceiverThread);
    return res;
}

} // namespace lruleak::channel
