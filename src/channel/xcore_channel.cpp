/**
 * @file
 * Cross-core channel run orchestration (plus the combined scenarios:
 * time-sliced party cores and the SMT-pair-on-a-multi-core-system).
 */

#include "channel/xcore_channel.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "timing/pointer_chase.hpp"

namespace lruleak::channel {

namespace {

/**
 * Build one NoiseProgram per noise core, with per-core seed and
 * footprint base so the cores never run in lockstep.
 */
std::vector<std::unique_ptr<exec::NoiseProgram>>
makeNoisePrograms(const exec::NoiseConfig &base_config,
                  std::uint32_t noise_cores, std::uint64_t seed)
{
    std::vector<std::unique_ptr<exec::NoiseProgram>> noise;
    noise.reserve(noise_cores);
    for (std::uint32_t i = 0; i < noise_cores; ++i) {
        exec::NoiseConfig nc = base_config;
        nc.seed = seed + 0x6e01'0000ULL + i;
        nc.base = base_config.base + i * 0x0100'0000'0000ULL;
        noise.push_back(std::make_unique<exec::NoiseProgram>(nc));
    }
    return noise;
}

/**
 * Per-party-core OS model for the time-sliced cross-core scenario:
 * same quantum on both cores, distinct kernel/background thread ids
 * and background footprints (the kernel working set is shared — it is
 * the same kernel).
 */
exec::TimeSlicePolicyConfig
partyCoreTimeSlice(const XCoreConfig &config, std::uint32_t core)
{
    exec::TimeSlicePolicyConfig tc = config.tslice;
    tc.quantum = config.quantum;
    tc.kernel_thread = 1000 + 2 * core;
    tc.background_thread = 1001 + 2 * core;
    tc.background_base += core * 0x0100'0000'0000ULL;
    return tc;
}

} // namespace

sim::MultiCoreConfig
multiCoreConfigFor(const XCoreConfig &config)
{
    sim::MultiCoreConfig mc;
    mc.cores = 2 + config.noise_cores;
    mc.llc.policy = config.llc_policy;
    mc.seed = config.seed;
    return mc;
}

ChannelLayout
xcoreLayoutFor(const XCoreConfig &config)
{
    // The address plan is built from the *LLC* geometry: lines 0..N-1
    // share one LLC set (and, since LLC-set bits contain the private-
    // cache set bits, one private set per core too).
    sim::CacheConfig llc = sim::CacheConfig::intelLlc();
    llc.policy = config.llc_policy;
    return ChannelLayout(llc, config.target_set, config.chase_set,
                         /*shared_same_vaddr=*/true);
}

XCoreResult
runXCoreChannel(const XCoreConfig &config)
{
    const std::size_t nbits = config.message.size() * config.repeats;

    SenderConfig sc;
    sc.alg = LruAlgorithm::Alg2Disjoint;
    sc.message = config.message;
    sc.repeats = config.repeats;
    sc.ts = config.ts;
    sc.encode_gap = config.encode_gap;

    ReceiverConfig rc;
    rc.alg = LruAlgorithm::Alg2Disjoint;
    rc.d = config.d;
    rc.tr = config.tr;
    // Sample slightly past the end of the message so the last bit gets
    // its full window even with scheduling skew.
    rc.max_samples = config.max_samples
        ? config.max_samples
        : (nbits * config.ts) / std::max<std::uint64_t>(config.tr, 1) + 8;

    sim::MultiCoreHierarchy hierarchy(multiCoreConfigFor(config));
    const ChannelLayout layout = xcoreLayoutFor(config);
    LruSender sender(layout, sc);
    LruReceiver receiver(layout, rc);

    const auto noise =
        makeNoisePrograms(config.noise, config.noise_cores, config.seed);
    std::vector<exec::ThreadSpec> specs{{&sender, 0}, {&receiver, 1}};
    for (std::uint32_t i = 0; i < config.noise_cores; ++i)
        specs.push_back(exec::ThreadSpec{noise[i].get(), 2 + i});

    sim::MultiCorePort port(hierarchy);
    exec::LowestClock policy;
    if (config.quantum > 0) {
        // Layer OS time-slicing on the party cores: TimeSlice nests
        // under the cross-core LowestClock arbitration.  Noise cores
        // stay dedicated (they model pinned background processes).
        policy.nest(0, std::make_unique<exec::TimeSlice>(
                           partyCoreTimeSlice(config, 0)));
        policy.nest(1, std::make_unique<exec::TimeSlice>(
                           partyCoreTimeSlice(config, 1)));
    }

    exec::EngineConfig ec = config.sched;
    ec.seed = config.seed;
    exec::Engine engine(port, config.uarch, policy, ec);
    const std::uint64_t end = engine.run(specs, /*primary=*/1);

    const timing::MeasurementModel model(config.uarch);

    XCoreResult res;
    res.samples = receiver.samples();
    res.sent = sender.sentBits();
    // The timed line-0 access resolves in the LLC when the line
    // survived and in memory when it was evicted, so the decision
    // threshold sits between those two levels (not L1/L2).
    res.threshold = model.chaseThresholdBetween(sim::HitLevel::LLC,
                                                sim::HitLevel::Memory);
    res.sender_start = sender.startTsc();
    res.cores = hierarchy.cores();

    // Algorithm 2 polarity: a 1 evicts line 0, so high latency = 1.
    res.received = windowDecode(res.samples, res.threshold,
                                /*invert=*/true, res.sender_start,
                                config.ts, nbits);
    res.error_rate = editErrorRate(res.sent, res.received);

    res.elapsed_cycles = end > res.sender_start ? end - res.sender_start
                                                : 0;
    res.kbps = config.uarch.kbps(nbits, res.elapsed_cycles);
    res.back_invalidations = hierarchy.backInvalidations();

    res.sender_l1 = hierarchy.l1(0).counters().forThread(kSenderThread);
    res.sender_llc = hierarchy.llc().counters().forThread(kSenderThread);
    res.receiver_llc =
        hierarchy.llc().counters().forThread(kReceiverThread);
    return res;
}

// --------------------------------------- SMT pair on a multi-core system

SmtMultiCoreResult
runSmtMulticore(const SmtMultiCoreConfig &config)
{
    const std::size_t nbits = config.message.size() * config.repeats;

    SenderConfig sc;
    sc.alg = config.alg;
    sc.message = config.message;
    sc.repeats = config.repeats;
    sc.ts = config.ts;
    sc.encode_gap = config.encode_gap;

    ReceiverConfig rc;
    rc.alg = config.alg;
    rc.d = config.d;
    rc.tr = config.tr;
    rc.max_samples = config.max_samples
        ? config.max_samples
        : (nbits * config.ts) / std::max<std::uint64_t>(config.tr, 1) + 8;

    // Core 0's private L1 carries the channel, exactly as in the
    // single-core SMT setting; the other cores only reach it through
    // shared-LLC back-invalidation.
    sim::MultiCoreConfig mc;
    mc.cores = 1 + config.noise_cores;
    mc.l1 = sim::CacheConfig::intelL1d(config.l1_policy);
    mc.seed = config.seed;
    sim::MultiCoreHierarchy hierarchy(mc);

    const ChannelLayout layout(sim::CacheConfig::intelL1d(config.l1_policy),
                               config.target_set, config.chase_set,
                               /*shared_same_vaddr=*/true);
    LruSender sender(layout, sc);
    LruReceiver receiver(layout, rc);

    const auto noise =
        makeNoisePrograms(config.noise, config.noise_cores, config.seed);
    std::vector<exec::ThreadSpec> specs{{&sender, 0}, {&receiver, 0}};
    for (std::uint32_t i = 0; i < config.noise_cores; ++i)
        specs.push_back(exec::ThreadSpec{noise[i].get(), 1 + i});

    sim::MultiCorePort port(hierarchy);
    exec::LowestClock policy;
    // The hyperthread pair on core 0: RoundRobinSmt nests under the
    // cross-core arbitration.  Noise cores get the default leaf.
    policy.nest(0, std::make_unique<exec::RoundRobinSmt>());

    exec::EngineConfig ec = config.sched;
    ec.seed = config.seed;
    exec::Engine engine(port, config.uarch, policy, ec);
    const std::uint64_t end = engine.run(specs, /*primary=*/1);

    const timing::MeasurementModel model(config.uarch);

    SmtMultiCoreResult res;
    res.samples = receiver.samples();
    res.sent = sender.sentBits();
    res.threshold = model.chaseThreshold();
    res.sender_start = sender.startTsc();
    res.cores = hierarchy.cores();

    const bool invert = config.alg == LruAlgorithm::Alg2Disjoint;
    res.received = windowDecode(res.samples, res.threshold, invert,
                                res.sender_start, config.ts, nbits);
    res.error_rate = editErrorRate(res.sent, res.received);

    res.elapsed_cycles = end > res.sender_start ? end - res.sender_start
                                                : 0;
    res.kbps = config.uarch.kbps(nbits, res.elapsed_cycles);
    res.back_invalidations = hierarchy.backInvalidations();

    res.sender_l1 = hierarchy.l1(0).counters().forThread(kSenderThread);
    res.receiver_l1 =
        hierarchy.l1(0).counters().forThread(kReceiverThread);
    return res;
}

} // namespace lruleak::channel
