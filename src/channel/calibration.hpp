/**
 * @file
 * One place for every channel decode threshold.
 *
 * Each channel design times one access (or one probe walk) and decides
 * "did the sender act?" by comparing the readout against a threshold
 * that separates two hit levels.  Before the Session refactor those
 * thresholds were derived in four different files (the covert-channel
 * runner, the cross-core runner, the Prime+Probe receiver and the
 * Flush+Reload tests); this module derives all of them from the
 * timing::Uarch and the channel kind:
 *
 *  - which cache level carries the channel (the private L1 for the
 *    SMT/time-sliced settings, the shared inclusive LLC for the
 *    cross-core ones) decides the latency pair being separated;
 *  - the LRU and Flush+Reload channels time a single chased access, so
 *    their threshold is MeasurementModel::chaseThresholdBetween over
 *    that pair;
 *  - Prime+Probe times the whole N-line probe walk, so its threshold is
 *    "all N served at the fast level, plus half the slow-fast delta"
 *    (the formula PpReceiver::probeThreshold has always used);
 *  - the polarity (does a 1 bit read as a *fast* or a *slow* sample)
 *    is channel-intrinsic: Algorithm 1 and Flush+Reload signal 1 with
 *    a hit, Algorithm 2 and Prime+Probe signal 1 with an eviction.
 */

#ifndef LRULEAK_CHANNEL_CALIBRATION_HPP
#define LRULEAK_CHANNEL_CALIBRATION_HPP

#include <cstdint>

#include "channel/channel_factory.hpp"
#include "timing/pointer_chase.hpp"

namespace lruleak::channel {

/** Which cache level carries the channel state. */
enum class Carrier
{
    L1,  //!< the private L1D (SMT and time-sliced sharing)
    Llc, //!< the shared inclusive LLC (cross-core sharing)
};

/** Everything the decoder needs to turn samples into bits. */
struct Calibration
{
    std::uint32_t threshold = 0;  //!< per-sample hit/miss decision point
    bool invert = false;          //!< true: a 1 bit reads as a slow sample
    sim::HitLevel fast = sim::HitLevel::L1; //!< level when line survived
    sim::HitLevel slow = sim::HitLevel::L2; //!< level when line was evicted
};

/**
 * The latency pair channel @p id separates on @p carrier, independent
 * of the CPU model (levels, not cycles).  Also drives the capability
 * text `lruleak describe <channel>` prints.
 */
Calibration carrierLevels(ChannelId id, Carrier carrier);

/**
 * Full calibration of channel @p id on @p carrier for one CPU model.
 *
 * @param ways      associativity of the carrier set (the ChannelLayout's
 *                  ways(); only Prime+Probe's walk length depends on it)
 * @param chain_len receiver chase-chain length (paper footnote 3)
 */
Calibration calibrationFor(const timing::Uarch &uarch, ChannelId id,
                           Carrier carrier, std::uint32_t ways,
                           std::uint32_t chain_len =
                               timing::MeasurementModel::kChainLength);

} // namespace lruleak::channel

#endif // LRULEAK_CHANNEL_CALIBRATION_HPP
