/**
 * @file
 * Channel name table and pair construction.
 */

#include "channel/channel_factory.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "channel/dirty_channel.hpp"
#include "util/strings.hpp"

namespace lruleak::channel {

std::string_view
channelIdToken(ChannelId id)
{
    switch (id) {
      case ChannelId::FrMem:      return "fr-mem";
      case ChannelId::FrL1:       return "fr-l1";
      case ChannelId::LruAlg1:    return "lru-alg1";
      case ChannelId::LruAlg2:    return "lru-alg2";
      case ChannelId::PrimeProbe: return "prime-probe";
      case ChannelId::XCoreLruAlg2: return "xcore-lru-alg2";
      case ChannelId::DirtyEvict:   return "dirty-evict";
      case ChannelId::FlushDirty:   return "flush-dirty";
    }
    return "unknown";
}

std::string
channelDisplayName(ChannelId id)
{
    switch (id) {
      case ChannelId::FrMem:      return "F+R (mem)";
      case ChannelId::FrL1:       return "F+R (L1)";
      case ChannelId::LruAlg1:    return "L1 LRU Alg.1";
      case ChannelId::LruAlg2:    return "L1 LRU Alg.2";
      case ChannelId::PrimeProbe: return "Prime+Probe";
      case ChannelId::XCoreLruAlg2: return "LLC LRU Alg.2 (x-core)";
      case ChannelId::DirtyEvict:   return "Dirty-evict (WB)";
      case ChannelId::FlushDirty:   return "Flush-dirty (clflush)";
    }
    return "unknown";
}

ChannelId
channelIdFromName(std::string_view name)
{
    const std::string n = util::normalizeToken(name);
    for (ChannelId id : allChannelIds()) {
        if (n == channelIdToken(id))
            return id;
    }
    if (n == "flush-reload-mem" || n == "flush-reload")
        return ChannelId::FrMem;
    if (n == "flush-reload-l1")
        return ChannelId::FrL1;
    if (n == "alg1" || n == "lru1")
        return ChannelId::LruAlg1;
    if (n == "alg2" || n == "lru2")
        return ChannelId::LruAlg2;
    if (n == "pp" || n == "primeprobe")
        return ChannelId::PrimeProbe;
    if (n == "xcore" || n == "xcore-alg2" || n == "llc-alg2")
        return ChannelId::XCoreLruAlg2;
    if (n == "dirtyevict" || n == "cui" || n == "wb-evict")
        return ChannelId::DirtyEvict;
    if (n == "flushdirty" || n == "flushgeist" || n == "fd")
        return ChannelId::FlushDirty;

    std::ostringstream os;
    os << "unknown channel '" << name << "'; valid channels:";
    for (ChannelId id : allChannelIds())
        os << " " << channelIdToken(id);
    throw std::invalid_argument(os.str());
}

const std::vector<ChannelId> &
allChannelIds()
{
    static const std::vector<ChannelId> ids{
        ChannelId::FrMem, ChannelId::FrL1, ChannelId::LruAlg1,
        ChannelId::LruAlg2, ChannelId::PrimeProbe,
        ChannelId::XCoreLruAlg2, ChannelId::DirtyEvict,
        ChannelId::FlushDirty};
    return ids;
}

LruAlgorithm
senderAlgorithmFor(ChannelId id)
{
    return channelCaps(id).sender_alg;
}

const ChannelCaps &
channelCaps(ChannelId id)
{
    // {sender_alg, shared_memory, uses_flush, invert, llc_geometry,
    //  dirty_state}
    static const ChannelCaps kFrMem{LruAlgorithm::Alg1Shared, true, true,
                                    false, false, false};
    static const ChannelCaps kFrL1{LruAlgorithm::Alg1Shared, true, false,
                                   false, false, false};
    static const ChannelCaps kAlg1{LruAlgorithm::Alg1Shared, true, false,
                                   false, false, false};
    static const ChannelCaps kAlg2{LruAlgorithm::Alg2Disjoint, false,
                                   false, true, false, false};
    static const ChannelCaps kPp{LruAlgorithm::Alg2Disjoint, false, false,
                                 true, false, false};
    static const ChannelCaps kXCore{LruAlgorithm::Alg2Disjoint, false,
                                    false, true, true, false};
    // Dirty-evict needs no shared memory (the sender dirties its own
    // line); flush-dirty flushes the one shared line, like F+R.  Both
    // decode "1 = slow sample" (a write-back stall).
    static const ChannelCaps kDirtyEvict{LruAlgorithm::Alg2Disjoint,
                                         false, false, true, false, true};
    static const ChannelCaps kFlushDirty{LruAlgorithm::Alg1Shared, true,
                                         true, true, false, true};
    switch (id) {
      case ChannelId::FrMem:        return kFrMem;
      case ChannelId::FrL1:         return kFrL1;
      case ChannelId::LruAlg1:      return kAlg1;
      case ChannelId::LruAlg2:      return kAlg2;
      case ChannelId::PrimeProbe:   return kPp;
      case ChannelId::XCoreLruAlg2: return kXCore;
      case ChannelId::DirtyEvict:   return kDirtyEvict;
      case ChannelId::FlushDirty:   return kFlushDirty;
    }
    return kAlg1;
}

std::uint32_t
defaultInitDepth(ChannelId id, std::uint32_t ways)
{
    switch (id) {
      case ChannelId::LruAlg1:      return ways;
      case ChannelId::LruAlg2:      return ways / 2;
      case ChannelId::XCoreLruAlg2: return 3 * ways / 4;
      case ChannelId::FrMem:
      case ChannelId::FrL1:
      case ChannelId::PrimeProbe:
      case ChannelId::DirtyEvict:
      case ChannelId::FlushDirty:
        break;
    }
    return 0;
}

ChannelPair::ChannelPair(ChannelId id, const ChannelLayout &layout,
                         const ChannelPairConfig &config)
    : id_(id)
{
    const LruAlgorithm alg = senderAlgorithmFor(id);

    SenderConfig sc;
    sc.alg = alg;
    sc.message = config.message;
    sc.repeats = config.repeats;
    sc.ts = config.ts;
    sc.encode_gap = config.encode_gap;
    sc.infinite = config.infinite;
    sc.lock_line = config.lock_line;
    sc.batch_walks = config.batch_walks;
    sc.write_polarity = channelCaps(id).dirty_state;
    if (id == ChannelId::DirtyEvict) {
        // A line the sender keeps re-touching is MRU/PLRU-protected and
        // the receiver's eviction walk can never victimise it.  Pace the
        // re-dirtying at the receiver's sampling period instead: one
        // touch per sample, re-arming the line right after the previous
        // walk drained it.  (Flush-dirty needs no pacing — clflush
        // removes the line regardless of replacement state.)
        sc.encode_gap = std::max(
            sc.encode_gap, static_cast<std::uint32_t>(config.tr));
    }
    sender_ = std::make_unique<LruSender>(layout, sc);

    switch (id) {
      case ChannelId::FrMem:
      case ChannelId::FrL1: {
        FrReceiverConfig rc;
        rc.kind = id == ChannelId::FrMem ? FlushKind::ToMemory
                                         : FlushKind::FromL1;
        rc.tr = config.tr;
        rc.max_samples = config.max_samples;
        rc.chain_len = config.chain_len;
        auto receiver = std::make_unique<FrReceiver>(layout, rc);
        samples_ = &receiver->samples();
        receiver_ = std::move(receiver);
        break;
      }
      case ChannelId::LruAlg1:
      case ChannelId::LruAlg2:
      case ChannelId::XCoreLruAlg2: {
        // XCoreLruAlg2 is Algorithm 2 run over whatever geometry the
        // layout describes — natively the shared LLC's (16 ways, so a
        // deeper default init), but any carrier works: the programs
        // only ever speak in layout lines.
        ReceiverConfig rc;
        rc.alg = alg;
        rc.d = config.d ? config.d : defaultInitDepth(id, layout.ways());
        rc.tr = config.tr;
        rc.max_samples = config.max_samples;
        rc.chain_len = config.chain_len;
        rc.batch_walks = config.batch_walks;
        auto receiver = std::make_unique<LruReceiver>(layout, rc);
        samples_ = &receiver->samples();
        receiver_ = std::move(receiver);
        break;
      }
      case ChannelId::PrimeProbe: {
        PpReceiverConfig rc;
        rc.tr = config.tr;
        rc.max_samples = config.max_samples;
        auto receiver = std::make_unique<PpReceiver>(layout, rc);
        samples_ = &receiver->samples();
        receiver_ = std::move(receiver);
        break;
      }
      case ChannelId::DirtyEvict: {
        DirtyEvictReceiverConfig rc;
        rc.tr = config.tr;
        rc.max_samples = config.max_samples;
        auto receiver = std::make_unique<DirtyEvictReceiver>(layout, rc);
        samples_ = &receiver->samples();
        receiver_ = std::move(receiver);
        break;
      }
      case ChannelId::FlushDirty: {
        FlushDirtyReceiverConfig rc;
        rc.tr = config.tr;
        rc.max_samples = config.max_samples;
        auto receiver = std::make_unique<FlushDirtyReceiver>(layout, rc);
        samples_ = &receiver->samples();
        receiver_ = std::move(receiver);
        break;
      }
    }
}

} // namespace lruleak::channel
