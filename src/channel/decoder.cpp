/**
 * @file
 * Decoder implementations.
 */

#include "channel/decoder.hpp"

#include <algorithm>
#include <cmath>

namespace lruleak::channel {

Bits
thresholdSamples(const std::vector<Sample> &samples, std::uint32_t threshold,
                 bool invert)
{
    Bits bits;
    bits.reserve(samples.size());
    for (const auto &s : samples) {
        const bool hit = s.latency <= threshold;
        const bool one = invert ? !hit : hit;
        bits.push_back(one ? 1 : 0);
    }
    return bits;
}

Bits
windowDecode(const std::vector<Sample> &samples, std::uint32_t threshold,
             bool invert, std::uint64_t t0, std::uint64_t ts,
             std::size_t nbits)
{
    if (ts == 0 || nbits == 0)
        return {};

    std::vector<std::uint32_t> ones(nbits, 0);
    std::vector<std::uint32_t> count(nbits, 0);
    for (const auto &s : samples) {
        if (s.tsc < t0)
            continue;
        const std::uint64_t k = (s.tsc - t0) / ts;
        if (k >= nbits)
            continue;
        const bool hit = s.latency <= threshold;
        const bool one = invert ? !hit : hit;
        ones[k] += one ? 1 : 0;
        ++count[k];
    }

    Bits out;
    out.reserve(nbits);
    for (std::size_t k = 0; k < nbits; ++k) {
        if (count[k] == 0)
            continue; // lost bit
        out.push_back(2 * ones[k] >= count[k] ? 1 : 0);
    }
    return out;
}

Bits
windowSymbols(const std::vector<Sample> &samples, std::uint32_t threshold,
              bool invert, std::uint64_t t0, std::uint64_t ts,
              std::size_t nbits)
{
    if (ts == 0 || nbits == 0)
        return {};

    std::vector<std::uint32_t> ones(nbits, 0);
    std::vector<std::uint32_t> count(nbits, 0);
    for (const auto &s : samples) {
        if (s.tsc < t0)
            continue;
        const std::uint64_t k = (s.tsc - t0) / ts;
        if (k >= nbits)
            continue;
        const bool hit = s.latency <= threshold;
        const bool one = invert ? !hit : hit;
        ones[k] += one ? 1 : 0;
        ++count[k];
    }

    Bits out;
    out.reserve(nbits);
    for (std::size_t k = 0; k < nbits; ++k) {
        if (count[k] == 0)
            out.push_back(kErasureSymbol);
        else
            out.push_back(2 * ones[k] >= count[k] ? 1 : 0);
    }
    return out;
}

std::vector<double>
movingAverage(const std::vector<double> &series, std::size_t window)
{
    if (window == 0 || series.empty())
        return series;
    std::vector<double> out(series.size());
    const std::size_t half = window / 2;
    double sum = 0.0;
    // Prefix sums keep this O(n).
    std::vector<double> prefix(series.size() + 1, 0.0);
    for (std::size_t i = 0; i < series.size(); ++i)
        prefix[i + 1] = prefix[i] + series[i];
    (void)sum;
    for (std::size_t i = 0; i < series.size(); ++i) {
        const std::size_t lo = i >= half ? i - half : 0;
        const std::size_t hi = std::min(series.size(), i + window - half);
        out[i] = (prefix[hi] - prefix[lo]) /
                 static_cast<double>(hi - lo);
    }
    return out;
}

std::size_t
bestAlternatingPeriod(const std::vector<double> &series,
                      std::size_t min_period, std::size_t max_period)
{
    if (series.empty() || min_period == 0)
        return min_period;
    std::size_t best_p = min_period;
    double best_score = -1.0;
    for (std::size_t p = min_period; p <= max_period; ++p) {
        // Fold at 2p: positions [0,p) carry one symbol, [p,2p) the other.
        double sum_a = 0.0, sum_b = 0.0;
        std::size_t n_a = 0, n_b = 0;
        for (std::size_t i = 0; i < series.size(); ++i) {
            if ((i / p) % 2 == 0) {
                sum_a += series[i];
                ++n_a;
            } else {
                sum_b += series[i];
                ++n_b;
            }
        }
        if (n_a == 0 || n_b == 0)
            continue;
        const double score = std::abs(sum_a / static_cast<double>(n_a) -
                                      sum_b / static_cast<double>(n_b));
        if (score > best_score) {
            best_score = score;
            best_p = p;
        }
    }
    return best_p;
}

std::vector<Sample>
trimSaturatedRuns(const std::vector<Sample> &samples,
                  std::uint32_t threshold, bool invert, std::size_t max_run)
{
    if (samples.size() <= max_run || max_run == 0)
        return samples;

    const Bits raw = thresholdSamples(samples, threshold, invert);
    std::vector<bool> keep(samples.size(), true);

    std::size_t run_start = 0;
    for (std::size_t i = 1; i <= raw.size(); ++i) {
        if (i == raw.size() || raw[i] != raw[run_start]) {
            if (i - run_start > max_run) {
                for (std::size_t j = run_start; j < i; ++j)
                    keep[j] = false;
            }
            run_start = i;
        }
    }

    std::vector<Sample> out;
    out.reserve(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        if (keep[i])
            out.push_back(samples[i]);
    }
    return out;
}

std::vector<double>
latencies(const std::vector<Sample> &samples)
{
    std::vector<double> out;
    out.reserve(samples.size());
    for (const auto &s : samples)
        out.push_back(static_cast<double>(s.latency));
    return out;
}

} // namespace lruleak::channel
