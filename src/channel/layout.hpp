/**
 * @file
 * Address plan for the LRU channel protocols.
 *
 * The paper's `line 0..N` are N+1 distinct cache lines mapping to one
 * target set.  This class hands out concrete virtual/physical addresses
 * for each party:
 *
 *  - Algorithm 1 (shared memory): `line 0` is one physical line visible
 *    to both processes (shared-library page); lines 1..N are private to
 *    the receiver.
 *  - Algorithm 2 (no shared memory): the receiver owns lines 0..N-1, the
 *    sender owns `line N`; they only agree on the set index, which works
 *    because bits 6..11 are page-offset bits identical in VA and PA.
 *
 * The receiver's 7-element pointer-chase chain lives in a different set
 * (the paper's optimisation to keep it from polluting the target set).
 */

#ifndef LRULEAK_CHANNEL_LAYOUT_HPP
#define LRULEAK_CHANNEL_LAYOUT_HPP

#include <cstdint>
#include <vector>

#include "sim/address.hpp"
#include "sim/cache_config.hpp"

namespace lruleak::channel {

/** Which protocol of the paper is in use. */
enum class LruAlgorithm
{
    Alg1Shared,   //!< Algorithm 1: shared `line 0`
    Alg2Disjoint, //!< Algorithm 2: disjoint address spaces
};

/** Thread ids used by channel programs throughout the library. */
constexpr sim::ThreadId kSenderThread = 0;
constexpr sim::ThreadId kReceiverThread = 1;

/**
 * Concrete addresses for one channel instance.
 */
class ChannelLayout
{
  public:
    /**
     * @param l1 geometry of the attacked L1 (sets/ways/line size)
     * @param target_set the set carrying the channel
     * @param chase_set the set holding the receiver's chase chain
     * @param shared_same_vaddr when false, sender and receiver map the
     *        shared line at different virtual addresses (separate
     *        processes); relevant for the AMD utag model
     */
    explicit ChannelLayout(const sim::CacheConfig &l1 =
                               sim::CacheConfig::intelL1d(),
                           std::uint32_t target_set = 7,
                           std::uint32_t chase_set = 63,
                           bool shared_same_vaddr = true)
        : layout_(l1.line_size, l1.numSets()), ways_(l1.ways),
          target_set_(target_set), chase_set_(chase_set),
          shared_same_vaddr_(shared_same_vaddr)
    {}

    /** Associativity N of the attacked cache. */
    std::uint32_t ways() const { return ways_; }
    std::uint32_t targetSet() const { return target_set_; }
    std::uint32_t chaseSet() const { return chase_set_; }
    const sim::AddressLayout &layout() const { return layout_; }

    /**
     * The receiver's `line i`.
     * Algorithm 1: i = 0 is the shared line, i in [1, N] are private.
     * Algorithm 2: i in [0, N-1] are private.
     */
    sim::MemRef
    receiverLine(LruAlgorithm alg, std::uint32_t i) const
    {
        if (alg == LruAlgorithm::Alg1Shared && i == 0)
            return sharedLine(kReceiverThread);
        const sim::Addr a =
            sim::lineInSet(layout_, target_set_, i, kReceiverBase);
        return sim::MemRef{a, a, kReceiverThread, false};
    }

    /** Number of lines the receiver touches per iteration (init+decode). */
    std::uint32_t
    receiverLineCount(LruAlgorithm alg) const
    {
        return alg == LruAlgorithm::Alg1Shared ? ways_ + 1 : ways_;
    }

    /** The line the sender touches to encode a 1. */
    sim::MemRef
    senderLine(LruAlgorithm alg) const
    {
        if (alg == LruAlgorithm::Alg1Shared)
            return sharedLine(kSenderThread);
        // Algorithm 2: the sender's own `line N` in the target set.
        const sim::Addr a =
            sim::lineInSet(layout_, target_set_, 0, kSenderBase);
        return sim::MemRef{a, a, kSenderThread, false};
    }

    /** The 7 receiver-local chain elements (in the chase set). */
    std::vector<sim::MemRef>
    chaseRefs(std::uint32_t chain_len = 7) const
    {
        std::vector<sim::MemRef> refs;
        refs.reserve(chain_len);
        for (std::uint32_t i = 0; i < chain_len; ++i) {
            const sim::Addr a =
                sim::lineInSet(layout_, chase_set_, i, kChaseBase);
            refs.push_back(sim::MemRef{a, a, kReceiverThread, false});
        }
        return refs;
    }

    /** The shared `line 0` as seen by @p thread. */
    sim::MemRef
    sharedLine(sim::ThreadId thread) const
    {
        const sim::Addr paddr =
            sim::lineInSet(layout_, target_set_, 0, kSharedBase);
        sim::Addr vaddr = paddr;
        if (!shared_same_vaddr_ && thread == kSenderThread) {
            // A different page-aligned mapping: same page-offset bits
            // (hence same VIPT set), different linear address (hence a
            // different AMD utag).
            vaddr = paddr + kSenderAliasOffset;
        }
        return sim::MemRef{vaddr, paddr, thread, false};
    }

    // Address-space bases; far enough apart that tags never collide.
    static constexpr sim::Addr kReceiverBase = 0x1000'0000'0000ULL;
    static constexpr sim::Addr kSenderBase = 0x2000'0000'0000ULL;
    static constexpr sim::Addr kSharedBase = 0x3000'0000'0000ULL;
    static constexpr sim::Addr kChaseBase = 0x4000'0000'0000ULL;
    static constexpr sim::Addr kSenderAliasOffset = 0x0550'0000'0000ULL;

  private:
    sim::AddressLayout layout_;
    std::uint32_t ways_;
    std::uint32_t target_set_;
    std::uint32_t chase_set_;
    bool shared_same_vaddr_;
};

} // namespace lruleak::channel

#endif // LRULEAK_CHANNEL_LAYOUT_HPP
