/**
 * @file
 * Wagner-Fischer edit distance (paper Section V-A, reference [40]).
 *
 * The channel has three error types — bit flips, insertions and losses —
 * so the paper scores a transmission by the Levenshtein distance between
 * the sent and received strings.
 */

#ifndef LRULEAK_CHANNEL_EDIT_DISTANCE_HPP
#define LRULEAK_CHANNEL_EDIT_DISTANCE_HPP

#include <cstddef>

#include "channel/bitstring.hpp"

namespace lruleak::channel {

/** Levenshtein distance between two bit strings (Wagner-Fischer DP). */
std::size_t editDistance(const Bits &a, const Bits &b);

/**
 * Channel error rate: edit distance normalised by the sent length.
 * Returns 0 for an empty sent string.
 */
double editErrorRate(const Bits &sent, const Bits &received);

} // namespace lruleak::channel

#endif // LRULEAK_CHANNEL_EDIT_DISTANCE_HPP
