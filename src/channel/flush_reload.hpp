/**
 * @file
 * Flush+Reload baseline channels (paper Sections II-A and VII).
 *
 * Two variants, matching the paper's Table V/VI comparison:
 *  - F+R (mem): the receiver clflushes the shared line to memory, so the
 *    sender's encode access is a full memory miss;
 *  - F+R (L1): the receiver evicts the shared line from L1 only (eight
 *    accesses to the set), so the sender's encode access hits L2.
 *
 * The sender is the same program as the LRU channel's (Algorithm 1
 * shared-line polarity): access = 1, no access = 0.  Only the receiver
 * differs: reload-and-time, then flush/evict, no LRU trickery.
 */

#ifndef LRULEAK_CHANNEL_FLUSH_RELOAD_HPP
#define LRULEAK_CHANNEL_FLUSH_RELOAD_HPP

#include <cstdint>
#include <vector>

#include "channel/layout.hpp"
#include "channel/lru_channel.hpp"
#include "exec/op.hpp"

namespace lruleak::channel {

/** Which level the receiver evicts the shared line to. */
enum class FlushKind
{
    ToMemory, //!< clflush (F+R mem)
    FromL1,   //!< eight same-set accesses (F+R L1)
};

/** Flush+Reload receiver knobs. */
struct FrReceiverConfig
{
    FlushKind kind = FlushKind::ToMemory;
    std::uint64_t tr = 600;
    std::uint64_t max_samples = 1000;
    std::uint32_t chain_len = 7;
};

/**
 * The Flush+Reload receiver: sleep -> reload (timed) -> flush -> repeat.
 */
class FrReceiver : public exec::ThreadProgram
{
  public:
    FrReceiver(const ChannelLayout &layout, FrReceiverConfig config);

    exec::Op next(std::uint64_t now) override;
    void onResult(const exec::OpResult &result) override;

    const std::vector<Sample> &samples() const { return samples_; }

  private:
    enum class Phase
    {
        Prewarm,
        FlushInit, //!< establish the flushed state before the first bit
        Sleep,
        Chain,
        Measure,
        Flush,
        Finished,
    };

    ChannelLayout layout_;
    FrReceiverConfig config_;
    sim::MemRef target_;
    std::vector<sim::MemRef> chase_;
    /** All-L1 chain expectation reused by every measure op. */
    std::vector<sim::HitLevel> chain_hint_;
    std::vector<sim::MemRef> evict_; //!< FromL1 eviction lines
    std::vector<Sample> samples_;

    Phase phase_ = Phase::Prewarm;
    std::uint32_t index_ = 0;
    std::uint64_t mark_ = 0;
};

} // namespace lruleak::channel

#endif // LRULEAK_CHANNEL_FLUSH_RELOAD_HPP
