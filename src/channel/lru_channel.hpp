/**
 * @file
 * The LRU-channel sender and receiver programs (paper Algorithms 1-3).
 *
 * Both parties are ThreadPrograms driven by a scheduler:
 *
 *  Receiver (Algorithms 1/2 + the sampling loop of Algorithm 3):
 *    loop {
 *      Init:    access lines 0..d-1 of the target set
 *      Sleep:   spin until Tlast + Tr
 *      Decode:  access the remaining lines (d..N for Alg 1, d..N-1 for 2)
 *      Measure: warm the 7-element chase chain, then time line 0
 *    }
 *
 *  Sender (Algorithm 3): for every message bit, for Ts cycles: if the bit
 *  is 1, keep touching its line (shared line 0 for Alg 1, own line N for
 *  Alg 2); if the bit is 0, don't touch the target set.  Either way it
 *  does its local "stack" work so miss rates are measured against a
 *  realistic access mix.
 */

#ifndef LRULEAK_CHANNEL_LRU_CHANNEL_HPP
#define LRULEAK_CHANNEL_LRU_CHANNEL_HPP

#include <cstdint>
#include <vector>

#include "channel/bitstring.hpp"
#include "channel/layout.hpp"
#include "exec/op.hpp"

namespace lruleak::channel {

/** One timed observation by the receiver. */
struct Sample
{
    std::uint64_t tsc = 0;        //!< when the measurement completed
    std::uint32_t latency = 0;    //!< pointer-chase readout (cycles)
    sim::HitLevel level = sim::HitLevel::L1; //!< ground truth (sim only)
};

/** Receiver knobs. */
struct ReceiverConfig
{
    LruAlgorithm alg = LruAlgorithm::Alg1Shared;
    std::uint32_t d = 8;            //!< init-phase length (paper's d)
    std::uint64_t tr = 600;         //!< sampling period in cycles
    std::uint64_t max_samples = 1000;
    std::uint32_t chain_len = 7;    //!< chase-chain length

    /**
     * Issue each protocol walk (prewarm, init, decode, chain refetch)
     * as one OpKind::AccessRun engine event instead of one Op per line.
     * Per-access charges are identical, but a walk becomes a single
     * scheduling event, so the interleaving under SMT/time-slicing is
     * coarser — a throughput mode for the bench lanes and bulk sweeps,
     * NOT bit-exact with the per-op default.
     */
    bool batch_walks = false;
};

/**
 * The receiver program.  Collects one Sample per protocol iteration.
 */
class LruReceiver : public exec::ThreadProgram
{
  public:
    LruReceiver(const ChannelLayout &layout, ReceiverConfig config);

    exec::Op next(std::uint64_t now) override;
    void onResult(const exec::OpResult &result) override;

    const std::vector<Sample> &samples() const { return samples_; }
    const ReceiverConfig &config() const { return config_; }

  private:
    enum class Phase
    {
        Prewarm, //!< initial fetch of the chase chain
        Init,    //!< lines 0..d-1
        Sleep,   //!< spin until mark + Tr
        Decode,  //!< lines d..last
        Chain,   //!< warm the chase chain
        Measure, //!< timed access to line 0
        Finished,
    };

    /** batch_walks: the whole protocol iteration as AccessRun events. */
    exec::Op nextBatch(std::uint64_t now);

    ChannelLayout layout_;
    ReceiverConfig config_;
    std::vector<sim::MemRef> chase_;
    /** All-L1 chain expectation reused by every measure op. */
    std::vector<sim::HitLevel> chain_hint_;
    std::vector<Sample> samples_;
    /** batch_walks: precomputed init / decode walks. */
    std::vector<sim::MemRef> init_refs_;
    std::vector<sim::MemRef> decode_refs_;

    Phase phase_ = Phase::Prewarm;
    std::uint32_t index_ = 0;      //!< loop index within the phase
    std::uint64_t mark_ = 0;       //!< Tlast of Algorithm 3
    bool first_init_ = true;       //!< batch_walks: arm mark_ once
    std::uint32_t last_line_;      //!< N for Alg 1, N-1 for Alg 2
};

/** Sender knobs. */
struct SenderConfig
{
    LruAlgorithm alg = LruAlgorithm::Alg1Shared;
    Bits message;                 //!< bits to send
    std::uint32_t repeats = 1;    //!< send the message this many times
    std::uint64_t ts = 6000;      //!< per-bit period in cycles
    std::uint32_t encode_gap = 40; //!< spin between encode iterations
    bool infinite = false;        //!< loop the message forever
    bool prewarm = true;          //!< fetch the line before starting
    bool lock_line = false;       //!< PL cache: lock the line on prewarm
    std::uint32_t stack_lines = 2; //!< local accesses per iteration

    /**
     * Encode in the line's *dirty bit* instead of its presence: the
     * sender touches its line every bit, as a store when sending 1 and
     * as a load when sending 0.  The access mix (and hence the miss
     * count) is identical for both symbols — the dirty-state channels'
     * stealth argument — and the receiver reads the bit back through
     * write-back latency (dirty-evict) or flush latency (flush-dirty).
     */
    bool write_polarity = false;

    /**
     * Issue each encode iteration's access burst (encode access, kick
     * walk, stack work) as one OpKind::AccessRun engine event.  Same
     * per-access charges, coarser interleaving — the throughput twin of
     * ReceiverConfig::batch_walks; not bit-exact with the default.
     */
    bool batch_walks = false;

    /**
     * Anti-SHARP team protocol (see channel/multi_spy.hpp): after every
     * encode access the sender expels its own private copies of the
     * target line (a kick walk over lines that conflict in the private
     * L1/L2 but map to other LLC sets).  With no private copy left the
     * LLC line is *unowned* under SHARP's ownership rule, so the
     * cooperating spies may evict it through the ordinary re-victimize
     * path — the covert sender deliberately waives the protection a
     * victim would enjoy.  Off for single-receiver sessions.
     */
    bool kick_private = false;
};

/**
 * The sender program.
 */
class LruSender : public exec::ThreadProgram
{
  public:
    LruSender(const ChannelLayout &layout, SenderConfig config);

    exec::Op next(std::uint64_t now) override;
    void onResult(const exec::OpResult &result) override;

    /** TSC at which bit 0 started (for decoder alignment). */
    std::uint64_t startTsc() const { return start_tsc_; }

    /** Bits actually sent (message x repeats), for error scoring. */
    Bits sentBits() const;

    /**
     * Hit levels of the encode accesses (Table V: where the sender's
     * modulating access was served — L1 for the LRU channels, L2 or
     * memory for the Flush+Reload variants).
     */
    const std::vector<sim::HitLevel> &encodeLevels() const
    {
        return encode_levels_;
    }

    const SenderConfig &config() const { return config_; }

  private:
    enum class Phase
    {
        Prewarm,
        Encode,
        Finished,
    };

    /** The bit currently being sent, or -1 past the end. */
    int currentBit(std::size_t index) const;

    ChannelLayout layout_;
    SenderConfig config_;
    sim::MemRef line_;
    std::vector<sim::MemRef> stack_;
    std::vector<sim::MemRef> kick_; //!< kick_private: private-copy expellers
    /** batch_walks: reusable per-iteration run buffer (encode first). */
    std::vector<sim::MemRef> iter_refs_;

    Phase phase_ = Phase::Prewarm;
    std::uint32_t pre_step_ = 0;   //!< prewarm sub-step
    std::size_t bit_index_ = 0;
    std::uint64_t bit_deadline_ = 0;
    std::uint64_t start_tsc_ = 0;
    bool started_ = false;
    std::uint32_t sub_step_ = 0;   //!< 0 = encode access, then stack work
    bool fresh_bit_ = true;        //!< first iteration of the current bit
    bool awaiting_encode_ = false; //!< next result is an encode access
    std::vector<sim::HitLevel> encode_levels_;
};

} // namespace lruleak::channel

#endif // LRULEAK_CHANNEL_LRU_CHANNEL_HPP
