/**
 * @file
 * The dirty-state channel family: receivers that decode the *dirty bit*
 * of a cache line instead of its presence.
 *
 * Both channels pair with the write-polarity LruSender (see
 * SenderConfig::write_polarity): the sender touches its line every bit
 * period, storing to it for a 1 and loading it for a 0.  Presence,
 * replacement state and miss counts are identical for both symbols —
 * only the line's dirty bit differs, so monitors that count misses or
 * watch LRU state see nothing.
 *
 *  - DirtyEvictReceiver (Cui et al.): Prime+Probe over the target set,
 *    but decoded through *write-back latency* rather than probe misses.
 *    Re-filling the set evicts the sender's line; when that line is
 *    dirty the eviction stalls on the write-back, and the receiver folds
 *    every write-back its refill triggered into the timed readout.
 *
 *  - FlushDirtyReceiver (Flushgeist): the receiver times clflush of the
 *    shared line.  Flushing a modified line stalls until the data is
 *    written back, so flush latency reads the dirty bit directly — from
 *    any cache level, which makes this the carrier-independent member
 *    of the family (it works unchanged cross-core).
 */

#ifndef LRULEAK_CHANNEL_DIRTY_CHANNEL_HPP
#define LRULEAK_CHANNEL_DIRTY_CHANNEL_HPP

#include <cstdint>
#include <vector>

#include "channel/layout.hpp"
#include "channel/lru_channel.hpp"
#include "exec/op.hpp"

namespace lruleak::channel {

/** Dirty-evict receiver knobs. */
struct DirtyEvictReceiverConfig
{
    std::uint64_t tr = 600;         //!< sampling period in cycles
    std::uint64_t max_samples = 1000;
};

/**
 * The dirty-evict receiver.  Each iteration sleeps, then walks N+1 own
 * lines through the N-way target set *in a fixed sequential order* —
 * the paper's Table I eviction sequence (lines 0..N), the only access
 * pattern that evicts an untouched line reliably under Tree-PLRU.  The
 * sender's line is the one line the walk never touches, so the walk's
 * refills evict it; when it is dirty the eviction stalls on the
 * write-back.
 *
 * The walk itself is left untimed: an over-subscribed walk's miss count
 * depends on the replacement policy (under true LRU it thrashes
 * completely), so timing it would bury the write-back stall under
 * refill variance.  Instead the receiver refetches a line in its
 * private chase set and times that — a guaranteed L1 hit — folding
 * every write-back the iteration triggered into the readout via
 * Op::measure's chain_writebacks.  This models an attacker timing the
 * whole walk with the hit/refill portion abstracted away, and makes the
 * sample's ONLY modulation the dirty bit: clean iterations read the L1
 * floor for every carrier, dirty ones read one uarch write-back above
 * it.
 */
class DirtyEvictReceiver : public exec::ThreadProgram
{
  public:
    DirtyEvictReceiver(const ChannelLayout &layout,
                       DirtyEvictReceiverConfig config);

    exec::Op next(std::uint64_t now) override;
    void onResult(const exec::OpResult &result) override;

    const std::vector<Sample> &samples() const { return samples_; }

  private:
    enum class Phase
    {
        Sleep,
        Walk,    //!< N+1 ordered accesses, write-backs collected
        Refetch, //!< pull the readout line into L1
        Measure, //!< timed L1 hit + the iteration's write-back stalls
        Finished,
    };

    ChannelLayout layout_;
    DirtyEvictReceiverConfig config_;
    std::vector<sim::MemRef> lines_;
    sim::MemRef readout_;
    std::vector<Sample> samples_;
    std::uint32_t pending_writebacks_ = 0; //!< since the last Measure

    Phase phase_ = Phase::Sleep;
    std::uint32_t index_ = 0;
    std::uint64_t mark_ = 0;
};

/** Flush-dirty receiver knobs. */
struct FlushDirtyReceiverConfig
{
    std::uint64_t tr = 600;         //!< sampling period in cycles
    std::uint64_t max_samples = 1000;
};

/**
 * The flush-dirty receiver: sleep, then timed clflush of the shared
 * line.  The flush also resets the dirty bit, so each sample reads
 * "did the sender store since my previous flush" — one bit per flush,
 * no priming, no eviction choreography.
 */
class FlushDirtyReceiver : public exec::ThreadProgram
{
  public:
    FlushDirtyReceiver(const ChannelLayout &layout,
                       FlushDirtyReceiverConfig config);

    exec::Op next(std::uint64_t now) override;
    void onResult(const exec::OpResult &result) override;

    const std::vector<Sample> &samples() const { return samples_; }

  private:
    enum class Phase
    {
        Sleep,
        Measure, //!< timed clflush of the shared line
        Finished,
    };

    ChannelLayout layout_;
    FlushDirtyReceiverConfig config_;
    sim::MemRef line_;
    std::vector<Sample> samples_;

    Phase phase_ = Phase::Sleep;
    std::uint64_t mark_ = 0;
};

} // namespace lruleak::channel

#endif // LRULEAK_CHANNEL_DIRTY_CHANNEL_HPP
