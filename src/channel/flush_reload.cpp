/**
 * @file
 * Flush+Reload receiver implementation.
 */

#include "channel/flush_reload.hpp"

#include <algorithm>

namespace lruleak::channel {

FrReceiver::FrReceiver(const ChannelLayout &layout, FrReceiverConfig config)
    : layout_(layout), config_(config),
      target_(layout.sharedLine(kReceiverThread)),
      chase_(layout.chaseRefs(config.chain_len)),
      chain_hint_(chase_.size(), sim::HitLevel::L1)
{
    // Eviction set for the FromL1 variant: the receiver's own lines of
    // the target set (as many as the cache has ways).
    for (std::uint32_t i = 1; i <= layout_.ways(); ++i)
        evict_.push_back(layout_.receiverLine(LruAlgorithm::Alg1Shared, i));
    samples_.reserve(config_.max_samples);
}

exec::Op
FrReceiver::next(std::uint64_t now)
{
    switch (phase_) {
      case Phase::Prewarm:
        if (index_ < chase_.size())
            return exec::Op::access(chase_[index_++]);
        index_ = 0;
        phase_ = Phase::FlushInit;
        [[fallthrough]];

      case Phase::FlushInit:
        if (config_.kind == FlushKind::ToMemory) {
            phase_ = Phase::Sleep;
            mark_ = now;
            return exec::Op::flush(target_);
        }
        if (index_ < evict_.size())
            return exec::Op::access(evict_[index_++]);
        index_ = 0;
        phase_ = Phase::Sleep;
        mark_ = now;
        [[fallthrough]];

      case Phase::Sleep: {
        phase_ = Phase::Chain;
        const std::uint64_t deadline = mark_ + config_.tr;
        mark_ = std::max(deadline, now);
        if (deadline > now)
            return exec::Op::spinUntil(deadline);
        [[fallthrough]];
      }

      case Phase::Chain:
        if (index_ < chase_.size())
            return exec::Op::access(chase_[index_++]);
        index_ = 0;
        phase_ = Phase::Measure;
        [[fallthrough]];

      case Phase::Measure:
        phase_ = Phase::Flush;
        return exec::Op::measure(target_, chain_hint_);

      case Phase::Flush:
        if (config_.kind == FlushKind::ToMemory) {
            phase_ = Phase::Sleep;
            return exec::Op::flush(target_);
        }
        if (index_ < evict_.size())
            return exec::Op::access(evict_[index_++]);
        index_ = 0;
        phase_ = Phase::Sleep;
        return next(now);

      case Phase::Finished:
        break;
    }
    return exec::Op::done();
}

void
FrReceiver::onResult(const exec::OpResult &result)
{
    if (result.kind != exec::OpKind::Measure)
        return;
    samples_.push_back(Sample{result.tsc, result.measured, result.level});
    if (samples_.size() >= config_.max_samples)
        phase_ = Phase::Finished;
}

} // namespace lruleak::channel
