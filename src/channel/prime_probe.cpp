/**
 * @file
 * Prime+Probe receiver implementation.
 */

#include "channel/prime_probe.hpp"

#include <algorithm>

#include "channel/calibration.hpp"

namespace lruleak::channel {

PpReceiver::PpReceiver(const ChannelLayout &layout, PpReceiverConfig config)
    : layout_(layout), config_(config)
{
    // The receiver's own N lines filling the target set.
    for (std::uint32_t i = 0; i < layout_.ways(); ++i)
        lines_.push_back(layout_.receiverLine(LruAlgorithm::Alg2Disjoint, i));
    samples_.reserve(config_.max_samples);
}

std::uint32_t
PpReceiver::probeThreshold(const timing::Uarch &uarch, std::uint32_t ways)
{
    // Derivation now lives with every other decode threshold in
    // channel::Calibration; this wrapper keeps the historical entry
    // point (and its exact values) alive.
    return calibrationFor(uarch, ChannelId::PrimeProbe, Carrier::L1, ways)
        .threshold;
}

exec::Op
PpReceiver::next(std::uint64_t now)
{
    switch (phase_) {
      case Phase::Prime:
        if (index_ < lines_.size())
            return exec::Op::access(lines_[index_++]);
        index_ = 0;
        phase_ = Phase::Sleep;
        [[fallthrough]];

      case Phase::Sleep: {
        phase_ = Phase::Probe;
        probe_levels_.clear();
        const std::uint64_t deadline = mark_ + config_.tr;
        mark_ = std::max(deadline, now);
        if (deadline > now)
            return exec::Op::spinUntil(deadline);
        [[fallthrough]];
      }

      case Phase::Probe:
        // Probe lines N-1 .. 1 (reverse order reduces self-eviction with
        // PLRU), collecting their levels; the final access is timed.
        if (index_ + 1 < lines_.size()) {
            const auto &ref = lines_[lines_.size() - 1 - index_];
            ++index_;
            return exec::Op::access(ref);
        }
        index_ = 0;
        phase_ = Phase::Measure;
        [[fallthrough]];

      case Phase::Measure:
        phase_ = Phase::Prime;
        return exec::Op::measure(lines_[0], probe_levels_);

      case Phase::Finished:
        break;
    }
    return exec::Op::done();
}

void
PpReceiver::onResult(const exec::OpResult &result)
{
    if (result.kind == exec::OpKind::Access && phase_ == Phase::Probe) {
        probe_levels_.push_back(result.level);
        return;
    }
    if (result.kind != exec::OpKind::Measure)
        return;
    samples_.push_back(Sample{result.tsc, result.measured, result.level});
    if (samples_.size() >= config_.max_samples)
        phase_ = Phase::Finished;
}

} // namespace lruleak::channel
