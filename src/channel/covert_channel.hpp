/**
 * @file
 * End-to-end covert-channel runs (paper Algorithm 3 + Sections V/VI).
 *
 * DEPRECATED SHIM.  The single-core LRU-channel harness that used to
 * live here is now one instantiation of the unified channel-session
 * pipeline (channel/session.hpp); runCovertChannel/runPercentOnes
 * survive as thin config translators over channel::runSession so the
 * original call sites keep compiling.  New code should build a
 * SessionConfig directly:
 *
 *   channel::SessionConfig s;
 *   s.channel = ChannelId::LruAlg1;          // cfg.alg
 *   s.mode = SharingMode::HyperThreaded;     // cfg.mode
 *   s.message = ...; s.d = 8;                // remaining knobs 1:1
 *   const auto res = channel::runSession(s);
 */

#ifndef LRULEAK_CHANNEL_COVERT_CHANNEL_HPP
#define LRULEAK_CHANNEL_COVERT_CHANNEL_HPP

#include <cstdint>

#include "channel/session.hpp"

namespace lruleak::channel {

/** Full configuration of one covert-channel run. */
struct CovertConfig
{
    timing::Uarch uarch = timing::Uarch::intelXeonE52690();
    LruAlgorithm alg = LruAlgorithm::Alg1Shared;
    SharingMode mode = SharingMode::HyperThreaded;
    sim::ReplPolicyKind l1_policy = sim::ReplPolicyKind::TreePlru;
    sim::PlMode pl_mode = sim::PlMode::Disabled;

    std::uint32_t d = 8;          //!< receiver init-phase parameter
    std::uint64_t tr = 600;       //!< receiver sampling period (cycles)
    std::uint64_t ts = 6000;      //!< sender per-bit period (cycles)
    Bits message;                 //!< bits to transmit
    std::uint32_t repeats = 1;

    std::uint32_t target_set = 7;
    std::uint32_t chase_set = 63;
    bool shared_same_vaddr = true;  //!< false: separate address spaces
                                    //!< (AMD utag experiment)
    bool sender_locks_line = false; //!< PL-cache attack (Fig. 11)
    std::uint32_t encode_gap = 40;
    std::uint64_t max_samples = 0;  //!< 0: derived from bits, Ts and Tr

    exec::TimeSlicePolicyConfig tslice{}; //!< TimeSliced-mode OS knobs
    std::uint64_t seed = 1;
};

/** Everything a figure/table needs from one run. */
struct CovertResult
{
    std::vector<Sample> samples;   //!< receiver's raw trace
    Bits sent;                     //!< ground-truth transmitted bits
    Bits received;                 //!< decoded bits
    double error_rate = 0.0;       //!< edit distance / sent length
    double kbps = 0.0;             //!< effective rate during the send
    std::uint64_t elapsed_cycles = 0;
    std::uint32_t threshold = 0;   //!< hit/miss decision latency
    std::uint64_t sender_start = 0;

    // Sender-process cache behaviour (Table VI).
    sim::LevelStats sender_l1;
    sim::LevelStats sender_l2;
    sim::LevelStats sender_llc;
    // Receiver side, for reference.
    sim::LevelStats receiver_l1;
};

/** The SessionConfig a legacy CovertConfig translates to. */
SessionConfig sessionConfigFor(const CovertConfig &config);

/** Run a full transmission and decode it (shim over runSession). */
CovertResult runCovertChannel(const CovertConfig &config);

/**
 * Time-sliced observation experiment (Figures 6, 8 and 15): the sender
 * constantly sends @p constant_bit; the receiver takes
 * @p config.max_samples measurements with period Tr; the return value is
 * the fraction of samples the receiver reads as 1.
 */
double runPercentOnes(const CovertConfig &config, std::uint8_t constant_bit);

/** Derive the hierarchy configuration a CovertConfig implies. */
sim::HierarchyConfig hierarchyFor(const CovertConfig &config);

} // namespace lruleak::channel

#endif // LRULEAK_CHANNEL_COVERT_CHANNEL_HPP
