/**
 * @file
 * The unified channel-session pipeline.
 */

#include "channel/session.hpp"

#include <algorithm>
#include <memory>
#include <span>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "channel/multi_spy.hpp"
#include "exec/trace_program.hpp"
#include "sim/access_port.hpp"
#include "util/strings.hpp"

namespace lruleak::channel {

std::string_view
sharingModeToken(SharingMode mode)
{
    switch (mode) {
      case SharingMode::HyperThreaded: return "hyperthreaded";
      case SharingMode::TimeSliced:    return "timesliced";
      case SharingMode::CrossCore:     return "crosscore";
    }
    return "unknown";
}

const std::vector<SharingMode> &
allSharingModes()
{
    static const std::vector<SharingMode> modes{
        SharingMode::HyperThreaded, SharingMode::TimeSliced,
        SharingMode::CrossCore};
    return modes;
}

SharingMode
sharingModeFromName(std::string_view name)
{
    const std::string n = util::normalizeToken(name);
    for (SharingMode mode : allSharingModes()) {
        if (n == sharingModeToken(mode))
            return mode;
    }
    if (n == "ht" || n == "smt" || n == "hyper-threaded")
        return SharingMode::HyperThreaded;
    if (n == "ts" || n == "time-sliced")
        return SharingMode::TimeSliced;
    if (n == "xcore" || n == "cross-core")
        return SharingMode::CrossCore;

    std::ostringstream os;
    os << "unknown sharing mode '" << name << "'; valid modes:";
    for (SharingMode mode : allSharingModes())
        os << " " << sharingModeToken(mode);
    throw std::invalid_argument(os.str());
}

Carrier
sessionCarrier(const SessionConfig &config)
{
    // Cross-core parties can only meet in the shared LLC; the x-core
    // channel speaks LLC geometry natively in every mode.
    if (config.mode == SharingMode::CrossCore ||
        channelCaps(config.channel).llc_geometry)
        return Carrier::Llc;
    return Carrier::L1;
}

bool
sessionMultiCore(const SessionConfig &config)
{
    return config.mode == SharingMode::CrossCore ||
           config.noise_cores > 0 || config.multicore;
}

ChannelLayout
sessionLayoutFor(const SessionConfig &config)
{
    if (sessionCarrier(config) == Carrier::Llc) {
        // LLC geometry: lines 0..N-1 share one LLC set *and*, because
        // LLC-set bits contain the private-cache set bits, one private
        // set per core too.
        sim::CacheConfig llc = sim::CacheConfig::intelLlc();
        if (config.llc_policy)
            llc.policy = *config.llc_policy;
        return ChannelLayout(llc, config.target_set, config.chase_set,
                             config.shared_same_vaddr);
    }
    return ChannelLayout(sim::CacheConfig::intelL1d(config.l1_policy),
                         config.target_set, config.chase_set,
                         config.shared_same_vaddr);
}

namespace {

/** Time-sliced runs outlive the SMT safety stop by orders of magnitude
 *  (quanta are ~1e8 cycles); keep the seed schedulers' respective caps. */
constexpr std::uint64_t kTimeSlicedMaxCycles = 4'000'000'000'000ULL;

/**
 * Build one background program per noise core.  Default: a
 * NoiseProgram with per-core seed and footprint base so the cores
 * never run in lockstep.  With SessionConfig::noise_trace set: a
 * looping TraceProgram per core, start offsets staggered across the
 * trace so N cores approximate N concurrent phases of the recorded
 * victim.
 */
std::vector<std::unique_ptr<exec::ThreadProgram>>
makeNoisePrograms(const SessionConfig &config)
{
    std::vector<std::unique_ptr<exec::ThreadProgram>> noise;
    noise.reserve(config.noise_cores);
    for (std::uint32_t i = 0; i < config.noise_cores; ++i) {
        if (config.noise_trace && !config.noise_trace->empty()) {
            const std::size_t stagger =
                i * (config.noise_trace->size() / config.noise_cores);
            noise.push_back(std::make_unique<exec::TraceProgram>(
                config.noise_trace, stagger, /*loop=*/true));
            continue;
        }
        exec::NoiseConfig nc = config.noise;
        nc.seed = config.seed + 0x6e01'0000ULL + i;
        nc.base = config.noise.base + i * 0x0100'0000'0000ULL;
        noise.push_back(std::make_unique<exec::NoiseProgram>(nc));
    }
    return noise;
}

/**
 * Per-party-core OS model for the time-sliced cross-core scenario:
 * same quantum on both cores, distinct kernel/background thread ids
 * and background footprints (the kernel working set is shared — it is
 * the same kernel).
 */
exec::TimeSlicePolicyConfig
partyCoreTimeSlice(const SessionConfig &config, std::uint32_t core)
{
    exec::TimeSlicePolicyConfig tc = config.tslice;
    tc.quantum = config.quantum;
    tc.kernel_thread = 1000 + 2 * core;
    tc.background_thread = 1001 + 2 * core;
    tc.background_base += core * 0x0100'0000'0000ULL;
    return tc;
}

/**
 * Topology reuse pool.  Building a topology is the dominant cost of a
 * short session (the LLC alone is 8192 sets, each with four per-way
 * vectors), while reset() — verified by test_session_fastpath — returns
 * a used topology to its exactly-as-constructed state: every
 * replacement-state struct's constructor delegates to its reset(), and
 * Cache::reset() reseeds the fill RNG with the constructor expression.
 * So runSession caches the last topology per thread and swaps it in
 * whenever the config tuple repeats, which is every repeated-session
 * workload (bench lanes, matrix sweeps, percent-ones loops).
 */
sim::CacheHierarchy &
pooledHierarchy(const sim::HierarchyConfig &config)
{
    static thread_local std::unique_ptr<sim::CacheHierarchy> pool;
    static thread_local sim::HierarchyConfig pool_config;
    if (pool && pool_config == config) {
        pool->reset();
        return *pool;
    }
    pool = std::make_unique<sim::CacheHierarchy>(config);
    pool_config = config;
    return *pool;
}

sim::MultiCoreHierarchy &
pooledMultiCore(const sim::MultiCoreConfig &config)
{
    static thread_local std::unique_ptr<sim::MultiCoreHierarchy> pool;
    static thread_local sim::MultiCoreConfig pool_config;
    if (pool && pool_config == config) {
        pool->reset();
        return *pool;
    }
    pool = std::make_unique<sim::MultiCoreHierarchy>(config);
    pool_config = config;
    return *pool;
}

/** End-of-run values that must outlive the engine. */
struct RunOutcome
{
    std::uint64_t end = 0;
    exec::ThreadStats sender_stats;
    exec::ThreadStats receiver_stats;
};

RunOutcome
finish(exec::Engine &engine, std::span<const exec::ThreadSpec> specs)
{
    RunOutcome out;
    out.end = engine.run(specs, /*primary=*/1);
    out.sender_stats = engine.stats(0);
    out.receiver_stats = engine.stats(1);
    return out;
}

/** Single-core stage: CacheHierarchy under RoundRobinSmt or TimeSlice. */
RunOutcome
runSingleCore(const SessionConfig &config, ChannelPair &pair,
              sim::CacheHierarchy &hierarchy)
{
    sim::SingleCorePort port(hierarchy);
    const std::vector<exec::ThreadSpec> specs{{&pair.sender(), 0},
                                              {&pair.receiver(), 0}};
    exec::EngineConfig ec = config.sched;
    ec.seed = config.seed;
    if (config.mode == SharingMode::HyperThreaded) {
        exec::RoundRobinSmt policy;
        exec::Engine engine(port, config.uarch, policy, ec);
        return finish(engine, specs);
    }
    ec.max_cycles = kTimeSlicedMaxCycles;
    exec::TimeSlice policy(config.tslice);
    exec::Engine engine(port, config.uarch, policy, ec);
    return finish(engine, specs);
}

/**
 * Multi-core stage: MultiCoreHierarchy under LowestClock, with the
 * sharing mode's intra-core policy nested on the party core(s) and
 * noise programs pinned to the remaining cores.  @p receivers holds
 * one program per receiving thread (the factory receiver, or the K
 * spies of a multi-spy session); cross-core receiver j runs on core
 * 1 + j.
 */
RunOutcome
runMultiCore(const SessionConfig &config, LruSender &sender,
             std::span<exec::ThreadProgram *const> receivers,
             sim::MultiCoreHierarchy &hierarchy)
{
    const bool xcore = config.mode == SharingMode::CrossCore;
    const std::uint32_t nrecv =
        static_cast<std::uint32_t>(receivers.size());
    const std::uint32_t first_noise_core = xcore ? 1 + nrecv : 1;

    const auto noise = makeNoisePrograms(config);
    std::vector<exec::ThreadSpec> specs{{&sender, 0}};
    for (std::uint32_t j = 0; j < nrecv; ++j)
        specs.push_back(exec::ThreadSpec{receivers[j], xcore ? 1 + j : 0});
    for (std::uint32_t i = 0; i < config.noise_cores; ++i)
        specs.push_back(exec::ThreadSpec{noise[i].get(),
                                         first_noise_core + i});

    sim::MultiCorePort port(hierarchy);
    exec::LowestClock policy;
    exec::EngineConfig ec = config.sched;
    ec.seed = config.seed;
    switch (config.mode) {
      case SharingMode::CrossCore:
        if (config.quantum > 0) {
            // Layer OS time-slicing on the party cores: TimeSlice nests
            // under the cross-core LowestClock arbitration.  Noise
            // cores stay dedicated (pinned background processes).
            for (std::uint32_t core = 0; core <= nrecv; ++core)
                policy.nest(core, std::make_unique<exec::TimeSlice>(
                                      partyCoreTimeSlice(config, core)));
        }
        break;
      case SharingMode::HyperThreaded:
        // The hyperthread pair on core 0; noise cores get the default
        // leaf.
        policy.nest(0, std::make_unique<exec::RoundRobinSmt>());
        break;
      case SharingMode::TimeSliced:
        policy.nest(0, std::make_unique<exec::TimeSlice>(config.tslice));
        ec.max_cycles = kTimeSlicedMaxCycles;
        break;
    }

    exec::Engine engine(port, config.uarch, policy, ec);
    return finish(engine, specs);
}

} // namespace

SessionResult
runSession(const SessionConfig &config)
{
    const std::size_t nbits = config.message.size() * config.repeats;
    const bool multi = sessionMultiCore(config);
    const std::uint32_t spy_count =
        std::max<std::uint32_t>(config.spies, 1);
    if (spy_count > 1 && (config.mode != SharingMode::CrossCore ||
                          config.channel != ChannelId::XCoreLruAlg2))
        throw std::invalid_argument(
            "multi-spy sessions (spies > 1) require the crosscore "
            "sharing mode and the xcore-lru-alg2 channel");

    // ----- stage 1: sender/receiver over the carrier-geometry layout.
    ChannelPairConfig pc;
    pc.message = config.message;
    pc.repeats = config.repeats;
    pc.ts = config.ts;
    pc.tr = config.tr;
    pc.d = config.d;
    pc.chain_len = config.chain_len;
    pc.encode_gap = config.encode_gap;
    pc.infinite = config.infinite;
    pc.lock_line = config.sender_locks_line;
    pc.batch_walks = config.batch_walks;
    // Sample slightly past the end of the message so the last bit gets
    // its full window even with scheduling skew.
    pc.max_samples = config.max_samples
        ? config.max_samples
        : (config.infinite
               ? 300
               : (nbits * config.ts) /
                         std::max<std::uint64_t>(config.tr, 1) +
                     8);

    const ChannelLayout layout = sessionLayoutFor(config);

    // One factory pair for the ordinary case; for a multi-spy session
    // the sender is built directly (same knobs the factory would use)
    // and the receiving side is the K-spy team.
    std::unique_ptr<ChannelPair> pair;
    std::unique_ptr<LruSender> team_sender;
    std::unique_ptr<MultiSpyReceiver> team;
    LruSender *sender = nullptr;
    std::vector<exec::ThreadProgram *> receivers;
    if (spy_count > 1) {
        SenderConfig sc;
        sc.alg = senderAlgorithmFor(config.channel);
        sc.message = pc.message;
        sc.repeats = pc.repeats;
        sc.ts = pc.ts;
        sc.encode_gap = pc.encode_gap;
        sc.infinite = pc.infinite;
        sc.lock_line = pc.lock_line;
        // Against SHARP the team runs the pin-slices protocol and the
        // cooperating sender waives its own line's ownership (see
        // channel/multi_spy.hpp).
        sc.kick_private = config.llc_secure == sim::SecureMode::Sharp;
        team_sender = std::make_unique<LruSender>(layout, sc);
        sender = team_sender.get();

        MultiSpyConfig msc;
        msc.spies = spy_count;
        msc.d = pc.d ? pc.d
                     : defaultInitDepth(config.channel, layout.ways());
        msc.tr = pc.tr;
        msc.max_samples = pc.max_samples;
        msc.chain_len = pc.chain_len;
        msc.pin_slices = config.llc_secure == sim::SecureMode::Sharp;
        team = std::make_unique<MultiSpyReceiver>(layout, msc);
        for (std::uint32_t j = 0; j < spy_count; ++j)
            receivers.push_back(&team->spy(j));
    } else {
        pair = std::make_unique<ChannelPair>(config.channel, layout, pc);
        sender = &pair->sender();
        receivers.push_back(&pair->receiver());
    }

    // ----- stage 2: topology + arbitration policy, then the run.
    SessionResult res;
    RunOutcome run;
    const auto applyWritePolicy = [&](sim::CacheConfig &cc) {
        cc.write_hit = config.write_hit;
        cc.write_miss = config.write_miss;
    };
    if (multi) {
        sim::MultiCoreConfig mc;
        mc.cores =
            (config.mode == SharingMode::CrossCore ? 1u + spy_count : 1u) +
            config.noise_cores;
        mc.l1 = sim::CacheConfig::intelL1d(config.l1_policy);
        mc.l1.secure = config.l1_secure;
        if (config.llc_policy)
            mc.llc.policy = *config.llc_policy;
        mc.llc.secure = config.llc_secure;
        mc.llc.sharp_alarm_threshold = config.llc_alarm_threshold;
        mc.seed = config.seed;
        applyWritePolicy(mc.l1);
        applyWritePolicy(mc.l2);
        applyWritePolicy(mc.llc);
        sim::MultiCoreHierarchy &hierarchy = pooledMultiCore(mc);

        run = runMultiCore(config, *sender, receivers, hierarchy);

        const std::uint32_t rcore =
            config.mode == SharingMode::CrossCore ? 1 : 0;
        res.cores = hierarchy.cores();
        res.back_invalidations = hierarchy.backInvalidations();
        res.sender_l1 = hierarchy.l1(0).counters().forThread(kSenderThread);
        res.sender_l2 = hierarchy.l2(0).counters().forThread(kSenderThread);
        res.sender_llc = hierarchy.llc().counters().forThread(kSenderThread);
        res.receiver_l1 =
            hierarchy.l1(rcore).counters().forThread(kReceiverThread);
        res.receiver_llc =
            hierarchy.llc().counters().forThread(kReceiverThread);
        if (config.llc_secure == sim::SecureMode::Sharp) {
            const sim::Cache &llc = hierarchy.llc();
            res.sharp_alarms = llc.sharpAlarmsTotal();
            res.sharp_forced = llc.sharpForcedTotal();
            res.sharp_denied = llc.sharpDeniedTotal();
            res.sharp_core_alarms.resize(hierarchy.cores());
            for (std::uint32_t c = 0; c < hierarchy.cores(); ++c)
                res.sharp_core_alarms[c] = llc.sharpAlarms(c);
        }
    } else {
        sim::HierarchyConfig h;
        h.l1 = sim::CacheConfig::intelL1d(config.l1_policy);
        h.l1.seed = config.seed;
        h.l1.secure = config.l1_secure;
        if (config.llc_policy)
            h.llc.policy = *config.llc_policy;
        h.l1_way_predictor = config.uarch.way_predictor;
        h.l1_pl_mode = config.pl_mode;
        applyWritePolicy(h.l1);
        applyWritePolicy(h.l2);
        applyWritePolicy(h.llc);
        sim::CacheHierarchy &hierarchy = pooledHierarchy(h);

        run = runSingleCore(config, *pair, hierarchy);

        res.sender_l1 = hierarchy.l1().counters().forThread(kSenderThread);
        res.sender_l2 = hierarchy.l2().counters().forThread(kSenderThread);
        res.sender_llc = hierarchy.llc().counters().forThread(kSenderThread);
        res.receiver_l1 =
            hierarchy.l1().counters().forThread(kReceiverThread);
        res.receiver_llc =
            hierarchy.llc().counters().forThread(kReceiverThread);
    }
    res.sender_stats = run.sender_stats;
    res.receiver_stats = run.receiver_stats;

    // ----- stage 3: calibrate, decode, score.
    const Calibration cal =
        calibrationFor(config.uarch, config.channel,
                       sessionCarrier(config), layout.ways(),
                       config.chain_len);
    res.threshold = cal.threshold;
    res.invert = cal.invert;

    res.spies = spy_count;
    res.samples = team ? team->mergedSamples() : pair->samples();
    res.sent = sender->sentBits();
    res.sender_start = sender->startTsc();
    if (!config.infinite) {
        if (team) {
            // Per-spy alignment first, then the any-spy-wins merge: each
            // spy's trace is windowed against the same sender bit clock,
            // so the merged row keeps the K=1 sent-bit alignment.
            std::vector<Bits> rows;
            rows.reserve(spy_count);
            for (std::uint32_t j = 0; j < spy_count; ++j) {
                rows.push_back(windowSymbols(
                    team->spySamples(j), res.threshold, res.invert,
                    res.sender_start, config.ts, nbits));
            }
            const Bits merged = mergeSpySymbols(rows);
            res.received.clear();
            for (const std::uint8_t s : merged) {
                if (s != kErasureSymbol)
                    res.received.push_back(s);
            }
            res.error_rate = editErrorRate(res.sent, res.received);
            if (config.collect_symbols)
                res.decoded_symbols = merged;
        } else {
            res.received =
                windowDecode(res.samples, res.threshold, res.invert,
                             res.sender_start, config.ts, nbits);
            res.error_rate = editErrorRate(res.sent, res.received);
            if (config.collect_symbols)
                res.decoded_symbols =
                    windowSymbols(res.samples, res.threshold, res.invert,
                                  res.sender_start, config.ts, nbits);
        }
    }

    res.elapsed_cycles =
        run.end > res.sender_start ? run.end - res.sender_start : 0;
    res.kbps = config.uarch.kbps(nbits, res.elapsed_cycles);
    return res;
}

double
sessionPercentOnes(SessionConfig config, std::uint8_t constant_bit)
{
    config.message = Bits{constant_bit};
    config.repeats = 1;
    config.infinite = true;
    const SessionResult r = runSession(config);

    const Bits bits = thresholdSamples(r.samples, r.threshold, r.invert);
    // Skip the first few warm-up observations.
    const std::size_t skip = std::min<std::size_t>(bits.size(), 4);
    Bits tail(bits.begin() + static_cast<std::ptrdiff_t>(skip), bits.end());
    return fractionOnes(tail);
}

} // namespace lruleak::channel
