/**
 * @file
 * Bit-string helpers.
 */

#include "channel/bitstring.hpp"

namespace lruleak::channel {

Bits
randomBits(std::size_t n, std::uint64_t seed)
{
    sim::Xoshiro256 rng(seed);
    Bits bits(n);
    for (auto &b : bits)
        b = static_cast<std::uint8_t>(rng.below(2));
    return bits;
}

Bits
alternatingBits(std::size_t n, std::uint8_t first)
{
    Bits bits(n);
    for (std::size_t i = 0; i < n; ++i)
        bits[i] = static_cast<std::uint8_t>((first + i) & 1);
    return bits;
}

Bits
repeatBits(const Bits &bits, std::size_t times)
{
    Bits out;
    out.reserve(bits.size() * times);
    for (std::size_t t = 0; t < times; ++t)
        out.insert(out.end(), bits.begin(), bits.end());
    return out;
}

Bits
textToBits(const std::string &text)
{
    Bits bits;
    bits.reserve(text.size() * 8);
    for (unsigned char c : text) {
        for (int i = 7; i >= 0; --i)
            bits.push_back(static_cast<std::uint8_t>((c >> i) & 1));
    }
    return bits;
}

std::string
bitsToText(const Bits &bits)
{
    std::string text;
    for (std::size_t i = 0; i + 8 <= bits.size(); i += 8) {
        unsigned char c = 0;
        for (std::size_t j = 0; j < 8; ++j)
            c = static_cast<unsigned char>((c << 1) | (bits[i + j] & 1));
        text.push_back(static_cast<char>(c));
    }
    return text;
}

std::string
bitsToString(const Bits &bits)
{
    std::string s;
    s.reserve(bits.size());
    for (auto b : bits)
        s.push_back(b ? '1' : '0');
    return s;
}

double
fractionOnes(const Bits &bits)
{
    if (bits.empty())
        return 0.0;
    std::size_t ones = 0;
    for (auto b : bits)
        ones += b ? 1 : 0;
    return static_cast<double>(ones) / static_cast<double>(bits.size());
}

} // namespace lruleak::channel
