/**
 * @file
 * Turning the receiver's latency samples back into bits.
 *
 * Hyper-threaded Intel traces are clean enough for a per-sample threshold
 * plus per-bit-window majority vote (Fig. 5).  AMD's coarse timestamps
 * need a moving average and a best-fit-period search (Fig. 7).  The
 * time-sliced experiments report the percentage of 1s (Fig. 6/8).
 */

#ifndef LRULEAK_CHANNEL_DECODER_HPP
#define LRULEAK_CHANNEL_DECODER_HPP

#include <cstdint>
#include <vector>

#include "channel/bitstring.hpp"
#include "channel/lru_channel.hpp"

namespace lruleak::channel {

/**
 * Classify each sample as 1 ("the sender touched the set") or 0.
 *
 * @param invert Algorithm 1 signals 1 with a *hit* of line 0 (latency
 *        below the threshold); Algorithm 2 signals 1 with a *miss*
 *        (latency above).  Pass invert=true for Algorithm 2.
 */
Bits thresholdSamples(const std::vector<Sample> &samples,
                      std::uint32_t threshold, bool invert);

/**
 * Window the samples into sender bit periods and majority-vote each
 * window.  Windows that received no samples are dropped (bit loss, which
 * the edit-distance scoring then charges).
 *
 * @param t0 TSC at which the sender started bit 0
 * @param ts sender bit period in cycles
 * @param nbits number of bits the sender intended to send
 */
Bits windowDecode(const std::vector<Sample> &samples,
                  std::uint32_t threshold, bool invert, std::uint64_t t0,
                  std::uint64_t ts, std::size_t nbits);

/**
 * Output symbol of a bit window that received no samples.  The leakage
 * estimator scores a channel whose output alphabet is {0, 1, erasure}:
 * unlike windowDecode (which drops the window and lets edit distance
 * charge the loss), the aligned view must keep one output symbol per
 * sent bit.
 */
inline constexpr std::uint8_t kErasureSymbol = 2;

/**
 * Aligned flavour of windowDecode for leakage estimation: exactly one
 * output symbol per sent bit, in order — the majority vote of the
 * window, or kErasureSymbol when the window received no samples.  The
 * i-th entry pairs with the i-th sent bit, which is what an empirical
 * confusion matrix / mutual-information estimate needs.
 */
Bits windowSymbols(const std::vector<Sample> &samples,
                   std::uint32_t threshold, bool invert, std::uint64_t t0,
                   std::uint64_t ts, std::size_t nbits);

/** Simple moving average of a series (window w, centered). */
std::vector<double> movingAverage(const std::vector<double> &series,
                                  std::size_t window);

/**
 * Find the per-bit sample period that best explains an alternating
 * 0/1/0/1 transmission: fold the series at each candidate period and
 * score the even/odd separation.  Returns the best period.
 * Used to analyse the AMD traces where the paper finds 97 and 85.
 */
std::size_t bestAlternatingPeriod(const std::vector<double> &series,
                                  std::size_t min_period,
                                  std::size_t max_period);

/**
 * The paper's run-length noise filter for Algorithm 2: stretches where
 * every observation saturates at 0 or 1 for longer than @p max_run
 * samples are external interference, not signal; they are trimmed out.
 */
std::vector<Sample> trimSaturatedRuns(const std::vector<Sample> &samples,
                                      std::uint32_t threshold, bool invert,
                                      std::size_t max_run);

/** Latency samples as doubles (for averaging/plotting helpers). */
std::vector<double> latencies(const std::vector<Sample> &samples);

} // namespace lruleak::channel

#endif // LRULEAK_CHANNEL_DECODER_HPP
