/**
 * @file
 * LRU channel program implementations.
 */

#include "channel/lru_channel.hpp"

#include <algorithm>

namespace lruleak::channel {

// -------------------------------------------------------------- receiver

LruReceiver::LruReceiver(const ChannelLayout &layout, ReceiverConfig config)
    : layout_(layout), config_(config),
      chase_(layout.chaseRefs(config.chain_len)),
      chain_hint_(chase_.size(), sim::HitLevel::L1)
{
    // Algorithm 1 walks lines 0..N (N+1 lines), Algorithm 2 walks
    // lines 0..N-1 (N lines).
    last_line_ = config_.alg == LruAlgorithm::Alg1Shared
                     ? layout_.ways()
                     : layout_.ways() - 1;
    samples_.reserve(config_.max_samples);

    if (config_.batch_walks) {
        for (std::uint32_t i = 0; i < config_.d; ++i)
            init_refs_.push_back(layout_.receiverLine(config_.alg, i));
        for (std::uint32_t i = config_.d; i <= last_line_; ++i)
            decode_refs_.push_back(layout_.receiverLine(config_.alg, i));
    }
}

exec::Op
LruReceiver::nextBatch(std::uint64_t now)
{
    // Same phase machine as next(), with every multi-line walk emitted
    // as one AccessRun.  Each case transitions first and emits second,
    // so the `now` a phase sees is the completion time of the previous
    // walk — exactly what the per-op path sees at its phase boundaries.
    switch (phase_) {
      case Phase::Prewarm:
        phase_ = Phase::Init;
        return exec::Op::accessRun(chase_);

      case Phase::Init:
        if (first_init_) {
            // Tlast arms when the prewarm walk completes, as in next().
            mark_ = now;
            first_init_ = false;
        }
        phase_ = Phase::Sleep;
        if (!init_refs_.empty())
            return exec::Op::accessRun(init_refs_);
        [[fallthrough]];

      case Phase::Sleep: {
        phase_ = Phase::Decode;
        const std::uint64_t deadline = mark_ + config_.tr;
        mark_ = std::max(deadline, now);
        if (deadline > now)
            return exec::Op::spinUntil(deadline);
        [[fallthrough]];
      }

      case Phase::Decode:
        phase_ = Phase::Chain;
        if (!decode_refs_.empty())
            return exec::Op::accessRun(decode_refs_);
        [[fallthrough]];

      case Phase::Chain:
        phase_ = Phase::Measure;
        return exec::Op::accessRun(chase_);

      case Phase::Measure:
        phase_ = Phase::Init;
        return exec::Op::measure(layout_.receiverLine(config_.alg, 0),
                                 chain_hint_);

      case Phase::Finished:
        break;
    }
    return exec::Op::done();
}

exec::Op
LruReceiver::next(std::uint64_t now)
{
    if (config_.batch_walks)
        return nextBatch(now);

    switch (phase_) {
      case Phase::Prewarm:
        if (index_ < chase_.size())
            return exec::Op::access(chase_[index_++]);
        index_ = 0;
        phase_ = Phase::Init;
        mark_ = now;
        [[fallthrough]];

      case Phase::Init:
        if (index_ < config_.d)
            return exec::Op::access(
                layout_.receiverLine(config_.alg, index_++));
        index_ = 0;
        phase_ = Phase::Sleep;
        [[fallthrough]];

      case Phase::Sleep: {
        phase_ = Phase::Decode;
        const std::uint64_t deadline = mark_ + config_.tr;
        // Tlast = TSC when the wait loop exits (Algorithm 3): if we are
        // already past the deadline, the mark snaps to now.
        mark_ = std::max(deadline, now);
        if (deadline > now)
            return exec::Op::spinUntil(deadline);
        [[fallthrough]];
      }

      case Phase::Decode:
        if (config_.d + index_ <= last_line_)
            return exec::Op::access(
                layout_.receiverLine(config_.alg, config_.d + index_++));
        index_ = 0;
        phase_ = Phase::Chain;
        [[fallthrough]];

      case Phase::Chain:
        // Refetch the chain so the timed pass hits L1 seven times.
        if (index_ < chase_.size())
            return exec::Op::access(chase_[index_++]);
        index_ = 0;
        phase_ = Phase::Measure;
        [[fallthrough]];

      case Phase::Measure:
        phase_ = Phase::Init;
        return exec::Op::measure(layout_.receiverLine(config_.alg, 0),
                                 chain_hint_);

      case Phase::Finished:
        break;
    }
    return exec::Op::done();
}

void
LruReceiver::onResult(const exec::OpResult &result)
{
    if (result.kind != exec::OpKind::Measure)
        return;
    samples_.push_back(Sample{result.tsc, result.measured, result.level});
    if (samples_.size() >= config_.max_samples)
        phase_ = Phase::Finished;
}

// ---------------------------------------------------------------- sender

LruSender::LruSender(const ChannelLayout &layout, SenderConfig config)
    : layout_(layout), config_(config), line_(layout.senderLine(config.alg))
{
    // The sender's private "stack" lines: always-hot local work placed in
    // a set far from the target so the access mix is realistic without
    // polluting the channel.
    const std::uint32_t stack_set =
        (layout_.targetSet() + 17) % layout_.layout().numSets();
    for (std::uint32_t i = 0; i < config_.stack_lines; ++i) {
        const sim::Addr a = sim::lineInSet(layout_.layout(), stack_set, i,
                                           ChannelLayout::kSenderBase);
        stack_.push_back(sim::MemRef{a, a, kSenderThread, false});
    }

    // kick_private: 16 lines sharing the target line's private L1/L2
    // index but living in other LLC sets (same aliasing scheme as the
    // spies' kick pool, own tag base).  Sixteen cycles both 8-way
    // private levels, so after a kick burst no private copy of the
    // target line survives and its LLC line is unowned under SHARP.
    if (config_.kick_private) {
        constexpr sim::Addr kSenderKickBase = 0x2800'0000'0000ULL;
        const std::uint32_t sets = layout_.layout().numSets();
        const std::uint32_t stride = std::max<std::uint32_t>(sets / 4, 1);
        for (std::uint32_t i = 0; i < 16; ++i) {
            const std::uint32_t kick_set =
                (layout_.targetSet() + stride * (i % 3 + 1)) % sets;
            const sim::Addr a = sim::lineInSet(layout_.layout(), kick_set,
                                               i / 3, kSenderKickBase);
            kick_.push_back(sim::MemRef{a, a, kSenderThread, false});
        }
    }
}

int
LruSender::currentBit(std::size_t index) const
{
    const std::size_t total = config_.message.size() *
        (config_.infinite ? ~std::size_t{0} / config_.message.size()
                          : config_.repeats);
    if (config_.message.empty() || index >= total)
        return -1;
    return config_.message[index % config_.message.size()];
}

exec::Op
LruSender::next(std::uint64_t now)
{
    if (phase_ == Phase::Prewarm) {
        // batch_walks: the whole prewarm (line fetch + kick expel) is one
        // run.  Locked prewarms stay per-op — AccessRun carries no lock
        // request.
        if (config_.batch_walks && !config_.lock_line) {
            phase_ = Phase::Encode;
            if (config_.prewarm) {
                iter_refs_.assign(1, line_);
                iter_refs_.insert(iter_refs_.end(), kick_.begin(),
                                  kick_.end());
                return exec::Op::accessRun(iter_refs_);
            }
        }
        if (phase_ == Phase::Prewarm && config_.prewarm && pre_step_ == 0) {
            ++pre_step_;
            return config_.lock_line
                       ? exec::Op::accessLock(line_, sim::LockReq::Lock)
                       : exec::Op::access(line_);
        }
        // kick_private: expel the prewarmed private copies right away,
        // so the team's warm-up pressure lands on the (unowned) target
        // line instead of wedging into a spy's slice.
        if (config_.prewarm && pre_step_ <= kick_.size())
            return exec::Op::access(kick_[pre_step_++ - 1]);
        phase_ = Phase::Encode;
    }

    if (phase_ == Phase::Finished)
        return exec::Op::done();

    if (!started_) {
        started_ = true;
        start_tsc_ = now;
        bit_deadline_ = now + config_.ts;
    }

    // Advance to the bit that owns the current instant.
    while (now >= bit_deadline_) {
        ++bit_index_;
        bit_deadline_ += config_.ts;
        sub_step_ = 0;
        fresh_bit_ = true;
    }

    const int bit = currentBit(bit_index_);
    if (bit < 0) {
        phase_ = Phase::Finished;
        return exec::Op::done();
    }

    // One encode iteration: (encode access if sending 1) -> (kick walk
    // if kick_private and the line was touched) -> local stack work ->
    // short spin.  The iteration then repeats until Ts expires.
    const std::uint32_t kicks = static_cast<std::uint32_t>(kick_.size());

    // batch_walks: the iteration's whole access burst is one run with
    // the encode access first, so the run's OpResult.level is the
    // encode level onResult() records.  The spin stays its own op.
    if (config_.batch_walks) {
        if (sub_step_ == 0) {
            sub_step_ = 1;
            iter_refs_.clear();
            if (config_.write_polarity) {
                sim::MemRef ref = line_;
                ref.is_write = bit == 1;
                awaiting_encode_ = true;
                iter_refs_.push_back(ref);
                iter_refs_.insert(iter_refs_.end(), kick_.begin(),
                                  kick_.end());
            } else if (bit == 1) {
                fresh_bit_ = false;
                awaiting_encode_ = true;
                iter_refs_.push_back(line_);
                iter_refs_.insert(iter_refs_.end(), kick_.begin(),
                                  kick_.end());
            } else if (config_.kick_private && fresh_bit_) {
                // Park the (unowned) line once at the start of a 0 bit,
                // then expel the private copies — see the per-op path.
                fresh_bit_ = false;
                iter_refs_.push_back(line_);
                iter_refs_.insert(iter_refs_.end(), kick_.begin(),
                                  kick_.end());
            }
            iter_refs_.insert(iter_refs_.end(), stack_.begin(),
                              stack_.end());
            if (!iter_refs_.empty())
                return exec::Op::accessRun(iter_refs_);
        }
        sub_step_ = 0;
        const std::uint64_t wake =
            std::min(now + config_.encode_gap, bit_deadline_);
        return exec::Op::spinUntil(wake);
    }
    if (sub_step_ == 0) {
        sub_step_ = 1;
        if (config_.write_polarity) {
            // Dirty-state encoding: access the line for both symbols,
            // store for 1 and load for 0 (see SenderConfig).
            awaiting_encode_ = true;
            sim::MemRef ref = line_;
            ref.is_write = bit == 1;
            return exec::Op::access(ref);
        }
        if (bit == 1) {
            fresh_bit_ = false;
            awaiting_encode_ = true;
            return exec::Op::access(line_);
        }
        // Sending 0 under the anti-SHARP protocol: park the line once
        // at the start of the bit — resident but (after the kick)
        // unowned, it is the absorber that lets the spies' churn damp
        // back to the quiet state instead of cycling through forced
        // evictions for the rest of the window.
        if (config_.kick_private && fresh_bit_) {
            fresh_bit_ = false;
            return exec::Op::access(line_);
        }
        // Sending 0: no access to the target set, and nothing to kick.
        sub_step_ = 1 + kicks;
    }
    if (sub_step_ <= kicks)
        return exec::Op::access(kick_[sub_step_++ - 1]);
    if (sub_step_ <= kicks + config_.stack_lines) {
        const auto &ref = stack_[sub_step_ - kicks - 1];
        ++sub_step_;
        return exec::Op::access(ref);
    }

    sub_step_ = 0;
    const std::uint64_t wake =
        std::min(now + config_.encode_gap, bit_deadline_);
    return exec::Op::spinUntil(wake);
}

void
LruSender::onResult(const exec::OpResult &result)
{
    if (awaiting_encode_ && (result.kind == exec::OpKind::Access ||
                             result.kind == exec::OpKind::AccessRun)) {
        // For a batched run the encode access is the run's first ref,
        // and an AccessRun's result.level is exactly that first level.
        encode_levels_.push_back(result.level);
        awaiting_encode_ = false;
    }
}

Bits
LruSender::sentBits() const
{
    return repeatBits(config_.message, config_.repeats);
}

} // namespace lruleak::channel
