/**
 * @file
 * Threshold derivation.
 */

#include "channel/calibration.hpp"

#include <vector>

namespace lruleak::channel {

namespace {

/**
 * Memo key for calibrationFor: exactly the numeric inputs the threshold
 * formulas consume, never the uarch's *name* — tests routinely build
 * modified CPU models that keep the stock label, and two uarchs that
 * agree on these numbers provably produce the same Calibration.
 */
struct CalKey
{
    ChannelId id;
    Carrier carrier;
    std::uint32_t ways;
    std::uint32_t chain_len;
    std::uint32_t l1_latency;
    std::uint32_t l2_latency;
    std::uint32_t llc_latency;
    std::uint32_t mem_latency;
    std::uint32_t tsc_granularity;
    std::uint32_t chase_overhead;
    std::uint32_t single_overhead;
    std::uint32_t serialize_floor;
    std::uint32_t wb_latency;

    bool operator==(const CalKey &) const = default;
};

/** Derivation without the memo (the pre-cache body of calibrationFor). */
Calibration
deriveCalibration(const timing::Uarch &uarch, ChannelId id,
                  Carrier carrier, std::uint32_t ways,
                  std::uint32_t chain_len);

} // namespace

Calibration
carrierLevels(ChannelId id, Carrier carrier)
{
    Calibration cal;
    cal.invert = channelCaps(id).invert;

    // The dirty-state readouts are carrier-independent: flush-dirty
    // times the flush itself, dirty-evict times a private L1 hit with
    // the walk's write-back stalls folded in.  Their levels are the
    // same for any carrier (and nominal — the slow case is a write-back
    // stall, not a slow-level fill — but `describe` still shows which
    // pair the readout straddles).
    if (id == ChannelId::DirtyEvict || id == ChannelId::FlushDirty) {
        cal.fast = sim::HitLevel::L1;
        cal.slow = sim::HitLevel::Memory;
        return cal;
    }

    if (carrier == Carrier::Llc) {
        // At LLC scale every channel decodes "line survived in the
        // shared LLC" (~LLC hit) against "line was evicted and, under
        // inclusion, back-invalidated" (a full memory miss).
        cal.fast = sim::HitLevel::LLC;
        cal.slow = sim::HitLevel::Memory;
        return cal;
    }

    switch (id) {
      case ChannelId::FrMem:
        // clflush pushes the shared line all the way to memory, so the
        // reload separates an L1 hit from a full memory miss.
        cal.fast = sim::HitLevel::L1;
        cal.slow = sim::HitLevel::Memory;
        break;
      case ChannelId::FrL1:
      case ChannelId::LruAlg1:
      case ChannelId::LruAlg2:
      case ChannelId::PrimeProbe:
      case ChannelId::XCoreLruAlg2:
        // The L1-resident designs all separate "served from L1" from
        // "evicted to L2" (the paper's Fig. 3/5 margin).
        cal.fast = sim::HitLevel::L1;
        cal.slow = sim::HitLevel::L2;
        break;
      case ChannelId::DirtyEvict:
      case ChannelId::FlushDirty:
        break; // handled above
    }
    return cal;
}

Calibration
calibrationFor(const timing::Uarch &uarch, ChannelId id, Carrier carrier,
               std::uint32_t ways, std::uint32_t chain_len)
{
    // Memoise per distinct numeric-input tuple.  Sessions re-calibrate
    // every run (per bit, in the per-bit experiment loops), always with
    // a handful of distinct tuples, so a small linear-scan cache wins
    // over any hashing.  thread_local keeps it data-race-free.
    const CalKey key{id,
                     carrier,
                     ways,
                     chain_len,
                     uarch.l1_latency,
                     uarch.l2_latency,
                     uarch.llc_latency,
                     uarch.mem_latency,
                     uarch.tsc_granularity,
                     uarch.chase_overhead,
                     uarch.single_overhead,
                     uarch.serialize_floor,
                     uarch.wb_latency};
    struct MemoEntry
    {
        CalKey key;
        Calibration cal;
    };
    static thread_local std::vector<MemoEntry> memo;
    for (const MemoEntry &e : memo) {
        if (e.key == key)
            return e.cal;
    }
    const Calibration cal =
        deriveCalibration(uarch, id, carrier, ways, chain_len);
    memo.push_back(MemoEntry{key, cal});
    return cal;
}

namespace {

Calibration
deriveCalibration(const timing::Uarch &uarch, ChannelId id,
                  Carrier carrier, std::uint32_t ways,
                  std::uint32_t chain_len)
{
    Calibration cal = carrierLevels(id, carrier);
    const timing::MeasurementModel model(uarch);

    if (id == ChannelId::PrimeProbe) {
        // Prime+Probe times the whole N-access probe walk: N fast-level
        // hits plus half the slow-fast delta.  Integer arithmetic kept
        // exactly as PpReceiver::probeThreshold has always computed it.
        const std::uint32_t fast = uarch.latency(cal.fast);
        const std::uint32_t slow = uarch.latency(cal.slow);
        cal.threshold =
            uarch.chase_overhead + ways * fast + (slow - fast) / 2;
        return cal;
    }

    // Half-granule recentering for the floor quantization, as in
    // MeasurementModel::chaseThresholdBetween.
    const double bias = (uarch.tsc_granularity - 1) / 2.0;

    if (id == ChannelId::DirtyEvict) {
        // The eviction walk is untimed; the readout is a refetched
        // private line — an L1 hit for every carrier — plus the
        // iteration's write-back stalls.  A clean iteration reads the
        // L1 floor, a dirty one reads one write-back above it, so the
        // threshold sits half a write-back over the floor.
        const double clean =
            uarch.chase_overhead + uarch.latency(sim::HitLevel::L1);
        cal.threshold = static_cast<std::uint32_t>(
            clean + uarch.wb_latency / 2.0 - bias);
        return cal;
    }

    if (id == ChannelId::FlushDirty) {
        // Timed clflush: the clean readout is the serialized flush
        // floor; a dirty line adds one write-back.  Carrier-independent
        // (no cache-level latency is involved at all).
        const double clean = uarch.single_overhead + uarch.serialize_floor;
        cal.threshold = static_cast<std::uint32_t>(
            clean + uarch.wb_latency / 2.0 - bias);
        return cal;
    }

    cal.threshold = model.chaseThresholdBetween(cal.fast, cal.slow,
                                                chain_len);
    return cal;
}

} // namespace

} // namespace lruleak::channel
