/**
 * @file
 * Threshold derivation.
 */

#include "channel/calibration.hpp"

namespace lruleak::channel {

Calibration
carrierLevels(ChannelId id, Carrier carrier)
{
    Calibration cal;
    cal.invert = channelCaps(id).invert;

    // The dirty-state readouts are carrier-independent: flush-dirty
    // times the flush itself, dirty-evict times a private L1 hit with
    // the walk's write-back stalls folded in.  Their levels are the
    // same for any carrier (and nominal — the slow case is a write-back
    // stall, not a slow-level fill — but `describe` still shows which
    // pair the readout straddles).
    if (id == ChannelId::DirtyEvict || id == ChannelId::FlushDirty) {
        cal.fast = sim::HitLevel::L1;
        cal.slow = sim::HitLevel::Memory;
        return cal;
    }

    if (carrier == Carrier::Llc) {
        // At LLC scale every channel decodes "line survived in the
        // shared LLC" (~LLC hit) against "line was evicted and, under
        // inclusion, back-invalidated" (a full memory miss).
        cal.fast = sim::HitLevel::LLC;
        cal.slow = sim::HitLevel::Memory;
        return cal;
    }

    switch (id) {
      case ChannelId::FrMem:
        // clflush pushes the shared line all the way to memory, so the
        // reload separates an L1 hit from a full memory miss.
        cal.fast = sim::HitLevel::L1;
        cal.slow = sim::HitLevel::Memory;
        break;
      case ChannelId::FrL1:
      case ChannelId::LruAlg1:
      case ChannelId::LruAlg2:
      case ChannelId::PrimeProbe:
      case ChannelId::XCoreLruAlg2:
        // The L1-resident designs all separate "served from L1" from
        // "evicted to L2" (the paper's Fig. 3/5 margin).
        cal.fast = sim::HitLevel::L1;
        cal.slow = sim::HitLevel::L2;
        break;
      case ChannelId::DirtyEvict:
      case ChannelId::FlushDirty:
        break; // handled above
    }
    return cal;
}

Calibration
calibrationFor(const timing::Uarch &uarch, ChannelId id, Carrier carrier,
               std::uint32_t ways, std::uint32_t chain_len)
{
    Calibration cal = carrierLevels(id, carrier);
    const timing::MeasurementModel model(uarch);

    if (id == ChannelId::PrimeProbe) {
        // Prime+Probe times the whole N-access probe walk: N fast-level
        // hits plus half the slow-fast delta.  Integer arithmetic kept
        // exactly as PpReceiver::probeThreshold has always computed it.
        const std::uint32_t fast = uarch.latency(cal.fast);
        const std::uint32_t slow = uarch.latency(cal.slow);
        cal.threshold =
            uarch.chase_overhead + ways * fast + (slow - fast) / 2;
        return cal;
    }

    // Half-granule recentering for the floor quantization, as in
    // MeasurementModel::chaseThresholdBetween.
    const double bias = (uarch.tsc_granularity - 1) / 2.0;

    if (id == ChannelId::DirtyEvict) {
        // The eviction walk is untimed; the readout is a refetched
        // private line — an L1 hit for every carrier — plus the
        // iteration's write-back stalls.  A clean iteration reads the
        // L1 floor, a dirty one reads one write-back above it, so the
        // threshold sits half a write-back over the floor.
        const double clean =
            uarch.chase_overhead + uarch.latency(sim::HitLevel::L1);
        cal.threshold = static_cast<std::uint32_t>(
            clean + uarch.wb_latency / 2.0 - bias);
        return cal;
    }

    if (id == ChannelId::FlushDirty) {
        // Timed clflush: the clean readout is the serialized flush
        // floor; a dirty line adds one write-back.  Carrier-independent
        // (no cache-level latency is involved at all).
        const double clean = uarch.single_overhead + uarch.serialize_floor;
        cal.threshold = static_cast<std::uint32_t>(
            clean + uarch.wb_latency / 2.0 - bias);
        return cal;
    }

    cal.threshold = model.chaseThresholdBetween(cal.fast, cal.slow,
                                                chain_len);
    return cal;
}

} // namespace lruleak::channel
