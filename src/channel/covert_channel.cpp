/**
 * @file
 * Covert-channel run orchestration.
 */

#include "channel/covert_channel.hpp"

#include <algorithm>

#include "timing/pointer_chase.hpp"

namespace lruleak::channel {

sim::HierarchyConfig
hierarchyFor(const CovertConfig &config)
{
    sim::HierarchyConfig h;
    h.l1 = sim::CacheConfig::intelL1d(config.l1_policy);
    h.l1.seed = config.seed;
    h.l1_way_predictor = config.uarch.way_predictor;
    h.l1_pl_mode = config.pl_mode;
    return h;
}

namespace {

/** Shared setup for both runners. */
struct RunContext
{
    sim::CacheHierarchy hierarchy;
    ChannelLayout layout;
    LruSender sender;
    LruReceiver receiver;

    RunContext(const CovertConfig &config, const SenderConfig &sc,
               const ReceiverConfig &rc)
        : hierarchy(hierarchyFor(config)),
          layout(sim::CacheConfig::intelL1d(config.l1_policy),
                 config.target_set, config.chase_set,
                 config.shared_same_vaddr),
          sender(layout, sc), receiver(layout, rc)
    {}
};

/** Time-sliced runs outlive the SMT safety stop by orders of magnitude
 *  (quanta are ~1e8 cycles); keep the seed schedulers' respective caps. */
constexpr std::uint64_t kTimeSlicedMaxCycles = 4'000'000'000'000ULL;

std::uint64_t
runScheduler(const CovertConfig &config, RunContext &ctx)
{
    sim::SingleCorePort port(ctx.hierarchy);
    exec::EngineConfig ec;
    ec.seed = config.seed;
    if (config.mode == SharingMode::HyperThreaded) {
        exec::RoundRobinSmt policy;
        exec::Engine engine(port, config.uarch, policy, ec);
        return engine.run(ctx.sender, ctx.receiver, /*primary=*/1);
    }
    ec.max_cycles = kTimeSlicedMaxCycles;
    exec::TimeSlice policy(config.tslice);
    exec::Engine engine(port, config.uarch, policy, ec);
    return engine.run(ctx.sender, ctx.receiver, /*primary=*/1);
}

} // namespace

CovertResult
runCovertChannel(const CovertConfig &config)
{
    const std::size_t nbits = config.message.size() * config.repeats;

    SenderConfig sc;
    sc.alg = config.alg;
    sc.message = config.message;
    sc.repeats = config.repeats;
    sc.ts = config.ts;
    sc.encode_gap = config.encode_gap;
    sc.lock_line = config.sender_locks_line;

    ReceiverConfig rc;
    rc.alg = config.alg;
    rc.d = config.d;
    rc.tr = config.tr;
    // Sample slightly past the end of the message so the last bit gets
    // its full window even with scheduling skew.
    rc.max_samples = config.max_samples
        ? config.max_samples
        : (nbits * config.ts) / std::max<std::uint64_t>(config.tr, 1) + 8;

    RunContext ctx(config, sc, rc);
    const std::uint64_t end = runScheduler(config, ctx);

    const timing::MeasurementModel model(config.uarch);

    CovertResult res;
    res.samples = ctx.receiver.samples();
    res.sent = ctx.sender.sentBits();
    res.threshold = model.chaseThreshold();
    res.sender_start = ctx.sender.startTsc();

    const bool invert = config.alg == LruAlgorithm::Alg2Disjoint;
    res.received = windowDecode(res.samples, res.threshold, invert,
                                res.sender_start, config.ts, nbits);
    res.error_rate = editErrorRate(res.sent, res.received);

    res.elapsed_cycles = end > res.sender_start ? end - res.sender_start
                                                : 0;
    res.kbps = config.uarch.kbps(nbits, res.elapsed_cycles);

    const auto &h = ctx.hierarchy;
    res.sender_l1 = h.l1().counters().forThread(kSenderThread);
    res.sender_l2 = h.l2().counters().forThread(kSenderThread);
    res.sender_llc = h.llc().counters().forThread(kSenderThread);
    res.receiver_l1 = h.l1().counters().forThread(kReceiverThread);
    return res;
}

double
runPercentOnes(const CovertConfig &config, std::uint8_t constant_bit)
{
    SenderConfig sc;
    sc.alg = config.alg;
    sc.message = Bits{constant_bit};
    sc.infinite = true;
    sc.ts = config.ts;
    // In the time-sliced setting an encode iteration per ~20k cycles is
    // behaviourally equivalent to a tight loop (the state only changes at
    // slice granularity) and keeps simulation tractable.
    sc.encode_gap = config.encode_gap;

    ReceiverConfig rc;
    rc.alg = config.alg;
    rc.d = config.d;
    rc.tr = config.tr;
    rc.max_samples = config.max_samples ? config.max_samples : 300;

    RunContext ctx(config, sc, rc);
    runScheduler(config, ctx);

    const timing::MeasurementModel model(config.uarch);
    const bool invert = config.alg == LruAlgorithm::Alg2Disjoint;
    const Bits bits = thresholdSamples(ctx.receiver.samples(),
                                       model.chaseThreshold(), invert);
    // Skip the first few warm-up observations.
    const std::size_t skip = std::min<std::size_t>(bits.size(), 4);
    Bits tail(bits.begin() + static_cast<std::ptrdiff_t>(skip), bits.end());
    return fractionOnes(tail);
}

} // namespace lruleak::channel
