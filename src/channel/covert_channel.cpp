/**
 * @file
 * Deprecated covert-channel shims: CovertConfig translated onto the
 * unified channel-session pipeline.
 */

#include "channel/covert_channel.hpp"

namespace lruleak::channel {

sim::HierarchyConfig
hierarchyFor(const CovertConfig &config)
{
    sim::HierarchyConfig h;
    h.l1 = sim::CacheConfig::intelL1d(config.l1_policy);
    h.l1.seed = config.seed;
    h.l1_way_predictor = config.uarch.way_predictor;
    h.l1_pl_mode = config.pl_mode;
    return h;
}

SessionConfig
sessionConfigFor(const CovertConfig &config)
{
    SessionConfig s;
    s.channel = config.alg == LruAlgorithm::Alg1Shared
                    ? ChannelId::LruAlg1
                    : ChannelId::LruAlg2;
    s.mode = config.mode;
    s.uarch = config.uarch;
    s.l1_policy = config.l1_policy;
    s.pl_mode = config.pl_mode;
    s.d = config.d;
    s.tr = config.tr;
    s.ts = config.ts;
    s.message = config.message;
    s.repeats = config.repeats;
    s.target_set = config.target_set;
    s.chase_set = config.chase_set;
    s.shared_same_vaddr = config.shared_same_vaddr;
    s.sender_locks_line = config.sender_locks_line;
    s.encode_gap = config.encode_gap;
    s.max_samples = config.max_samples;
    s.tslice = config.tslice;
    s.seed = config.seed;
    return s;
}

CovertResult
runCovertChannel(const CovertConfig &config)
{
    const SessionResult r = runSession(sessionConfigFor(config));

    CovertResult res;
    res.samples = r.samples;
    res.sent = r.sent;
    res.received = r.received;
    res.error_rate = r.error_rate;
    res.kbps = r.kbps;
    res.elapsed_cycles = r.elapsed_cycles;
    res.threshold = r.threshold;
    res.sender_start = r.sender_start;
    res.sender_l1 = r.sender_l1;
    res.sender_l2 = r.sender_l2;
    res.sender_llc = r.sender_llc;
    res.receiver_l1 = r.receiver_l1;
    return res;
}

double
runPercentOnes(const CovertConfig &config, std::uint8_t constant_bit)
{
    return sessionPercentOnes(sessionConfigFor(config), constant_bit);
}

} // namespace lruleak::channel
