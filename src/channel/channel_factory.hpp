/**
 * @file
 * Name-addressable channel construction.
 *
 * The paper compares five receiver designs over the same sender model:
 * the two LRU channels (Algorithms 1 and 2), the two Flush+Reload
 * baselines and Prime+Probe.  ChannelId enumerates them once for the
 * whole codebase; channelIdFromName() makes them selectable from CLI
 * parameters ("lru-alg1", "fr-mem", "prime-probe", ...); ChannelPair
 * instantiates the matching sender/receiver ThreadPrograms over one
 * ChannelLayout so experiment code never dispatches on the kind again.
 *
 * core::ChannelKind (Tables V-VII) is an alias of ChannelId.
 */

#ifndef LRULEAK_CHANNEL_CHANNEL_FACTORY_HPP
#define LRULEAK_CHANNEL_CHANNEL_FACTORY_HPP

#include <memory>
#include <string>
#include <vector>

#include "channel/flush_reload.hpp"
#include "channel/lru_channel.hpp"
#include "channel/prime_probe.hpp"

namespace lruleak::channel {

/** Every channel design the repo can drive end to end. */
enum class ChannelId
{
    FrMem,      //!< Flush+Reload, line flushed to memory
    FrL1,       //!< Flush+Reload within L1 (evict to L2)
    LruAlg1,    //!< LRU channel, shared memory (paper Algorithm 1)
    LruAlg2,    //!< LRU channel, no shared memory (paper Algorithm 2)
    PrimeProbe, //!< Prime+Probe baseline (Osvik et al.)
    XCoreLruAlg2, //!< Algorithm 2 over the shared inclusive LLC
                  //!< (cross-core; SharingMode::CrossCore sessions)
    DirtyEvict,   //!< dirty-state channel: write-back latency of the
                  //!< receiver's refill distinguishes whether the evicted
                  //!< sender line was dirty (Cui et al.)
    FlushDirty,   //!< dirty-state channel: clflush of a modified shared
                  //!< line stalls on the write-back, so timed flushes
                  //!< decode the dirty bit (Flushgeist)
};

/** Stable CLI token: "fr-mem", "fr-l1", "lru-alg1", ... */
std::string_view channelIdToken(ChannelId id);

/** Paper-style display name: "F+R (mem)", "L1 LRU Alg.1", ... */
std::string channelDisplayName(ChannelId id);

/**
 * Parse a channel name (case-insensitive; accepts the token, common
 * aliases like "flush-reload-mem" / "pp", and '_' for '-').  Throws
 * std::invalid_argument listing the valid tokens.
 */
ChannelId channelIdFromName(std::string_view name);

/** All ids, in ChannelId declaration order. */
const std::vector<ChannelId> &allChannelIds();

/** The sender algorithm a channel pairs with (Alg 2 when no sharing). */
LruAlgorithm senderAlgorithmFor(ChannelId id);

/**
 * What a channel design needs from — and how it behaves on — the
 * topology it runs over.  Since the Session refactor every ChannelId
 * constructs against any ChannelLayout and runs under any sharing mode;
 * the capabilities record the *properties* that differ per design, so
 * `lruleak describe <channel>` and channel::Session derive behaviour
 * from data instead of per-channel branches.
 */
struct ChannelCaps
{
    LruAlgorithm sender_alg;  //!< protocol the sender modulates with
    bool shared_memory;       //!< parties need one shared physical line
    bool uses_flush;          //!< receiver issues clflush
    bool invert;              //!< decode polarity: 1 bit = slow sample
    bool llc_geometry;        //!< layout natively built from the LLC
                              //!< geometry in every sharing mode
    bool dirty_state;         //!< the modulated state is the line's dirty
                              //!< bit, not its presence: the sender uses
                              //!< write-polarity encoding and the channel
                              //!< needs a write-back cache to exist at all
};

/** Capability record of one channel design. */
const ChannelCaps &channelCaps(ChannelId id);

/**
 * Default receiver init depth (the paper's d) for an N-way carrier set:
 * Algorithm 1 primes the whole set (d = N), Algorithm 2 half of it
 * (d = N/2, the paper's d = 4 at N = 8), the cross-core Algorithm 2
 * three quarters (d = 12 at the LLC's N = 16).  Channels without an
 * init phase return 0.
 */
std::uint32_t defaultInitDepth(ChannelId id, std::uint32_t ways);

/** Common knobs for a factory-built sender/receiver pair. */
struct ChannelPairConfig
{
    Bits message;                  //!< bits the sender transmits
    std::uint32_t repeats = 1;
    std::uint64_t ts = 6000;       //!< sender per-bit period (cycles)
    std::uint64_t tr = 600;        //!< receiver sampling period (cycles)
    std::uint32_t d = 0;           //!< LRU init depth; 0 = per-channel
                                   //!< default (see defaultInitDepth)
    std::uint64_t max_samples = 1000;
    std::uint32_t chain_len = 7;
    std::uint32_t encode_gap = 40;
    bool infinite = false;         //!< sender loops the message forever
    bool lock_line = false;        //!< PL cache: lock the sender's line

    /**
     * Issue the parties' multi-line walks as single AccessRun engine
     * events (LRU sender/receiver only; the other designs ignore it).
     * Identical per-access charges but coarser interleaving — the
     * throughput mode of the bench lanes, not bit-exact with per-op.
     */
    bool batch_walks = false;
};

/**
 * One constructed sender/receiver pair, ready for any execution-engine
 * arbitration policy.  Owns both programs; samples() reaches through to
 * whichever receiver type was built.  The layout decides the carrier
 * geometry (L1 for the single-core channels, LLC for the cross-core
 * ones) — channel::Session picks it; see sessionLayoutFor.
 */
class ChannelPair
{
  public:
    ChannelPair(ChannelId id, const ChannelLayout &layout,
                const ChannelPairConfig &config);

    ChannelId id() const { return id_; }
    LruSender &sender() { return *sender_; }
    exec::ThreadProgram &receiver() { return *receiver_; }
    const std::vector<Sample> &samples() const { return *samples_; }

  private:
    ChannelId id_;
    std::unique_ptr<LruSender> sender_;
    std::unique_ptr<exec::ThreadProgram> receiver_;
    const std::vector<Sample> *samples_ = nullptr;
};

} // namespace lruleak::channel

#endif // LRULEAK_CHANNEL_CHANNEL_FACTORY_HPP
