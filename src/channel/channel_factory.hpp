/**
 * @file
 * Name-addressable channel construction.
 *
 * The paper compares five receiver designs over the same sender model:
 * the two LRU channels (Algorithms 1 and 2), the two Flush+Reload
 * baselines and Prime+Probe.  ChannelId enumerates them once for the
 * whole codebase; channelIdFromName() makes them selectable from CLI
 * parameters ("lru-alg1", "fr-mem", "prime-probe", ...); ChannelPair
 * instantiates the matching sender/receiver ThreadPrograms over one
 * ChannelLayout so experiment code never dispatches on the kind again.
 *
 * core::ChannelKind (Tables V-VII) is an alias of ChannelId.
 */

#ifndef LRULEAK_CHANNEL_CHANNEL_FACTORY_HPP
#define LRULEAK_CHANNEL_CHANNEL_FACTORY_HPP

#include <memory>
#include <string>
#include <vector>

#include "channel/flush_reload.hpp"
#include "channel/lru_channel.hpp"
#include "channel/prime_probe.hpp"

namespace lruleak::channel {

/** Every channel design the repo can drive end to end. */
enum class ChannelId
{
    FrMem,      //!< Flush+Reload, line flushed to memory
    FrL1,       //!< Flush+Reload within L1 (evict to L2)
    LruAlg1,    //!< LRU channel, shared memory (paper Algorithm 1)
    LruAlg2,    //!< LRU channel, no shared memory (paper Algorithm 2)
    PrimeProbe, //!< Prime+Probe baseline (Osvik et al.)
    XCoreLruAlg2, //!< Algorithm 2 over the shared inclusive LLC
                  //!< (cross-core; see channel/xcore_channel.hpp)
};

/** Stable CLI token: "fr-mem", "fr-l1", "lru-alg1", ... */
std::string_view channelIdToken(ChannelId id);

/** Paper-style display name: "F+R (mem)", "L1 LRU Alg.1", ... */
std::string channelDisplayName(ChannelId id);

/**
 * Parse a channel name (case-insensitive; accepts the token, common
 * aliases like "flush-reload-mem" / "pp", and '_' for '-').  Throws
 * std::invalid_argument listing the valid tokens.
 */
ChannelId channelIdFromName(std::string_view name);

/** All ids, in ChannelId declaration order. */
const std::vector<ChannelId> &allChannelIds();

/** The sender algorithm a channel pairs with (Alg 2 when no sharing). */
LruAlgorithm senderAlgorithmFor(ChannelId id);

/** Common knobs for a factory-built sender/receiver pair. */
struct ChannelPairConfig
{
    Bits message;                  //!< bits the sender transmits
    std::uint32_t repeats = 1;
    std::uint64_t ts = 6000;       //!< sender per-bit period (cycles)
    std::uint64_t tr = 600;        //!< receiver sampling period (cycles)
    std::uint32_t d = 0;           //!< LRU init depth; 0 = per-alg default
    std::uint64_t max_samples = 1000;
    std::uint32_t chain_len = 7;
    std::uint32_t encode_gap = 40;
};

/**
 * One constructed sender/receiver pair, ready for a single-core
 * scheduler.  Owns both programs; samples() reaches through to
 * whichever receiver type was built.  ChannelId::XCoreLruAlg2 is
 * rejected here (throws std::invalid_argument): the cross-core channel
 * needs the multi-core topology — see channel::runXCoreChannel.
 */
class ChannelPair
{
  public:
    ChannelPair(ChannelId id, const ChannelLayout &layout,
                const ChannelPairConfig &config);

    ChannelId id() const { return id_; }
    LruSender &sender() { return *sender_; }
    exec::ThreadProgram &receiver() { return *receiver_; }
    const std::vector<Sample> &samples() const { return *samples_; }

  private:
    ChannelId id_;
    std::unique_ptr<LruSender> sender_;
    std::unique_ptr<exec::ThreadProgram> receiver_;
    const std::vector<Sample> *samples_ = nullptr;
};

} // namespace lruleak::channel

#endif // LRULEAK_CHANNEL_CHANNEL_FACTORY_HPP
